//! Incremental delta ingestion: warm-started canonicalization for
//! streaming OKB triples.
//!
//! The batch pipeline (`crate::pipeline`) treats canonicalization as a
//! one-shot snapshot job: blocking, graph construction and LBP all start
//! from nothing on every run. A serving deployment sees OIE triples
//! *arrive*, and re-running the whole stack per arrival throws away the
//! one thing the previous run paid for — a converged factor graph.
//!
//! [`IncrementalJocl`] is the session object that keeps it. It owns the
//! growing [`Okb`], the append-only [`BlockingIndex`], the live
//! [`GraphPlan`] and the last committed LBP messages, and exposes one
//! operation: [`IncrementalJocl::apply_delta`]. A delta
//!
//! 1. **ingests** its triples idempotently (`Okb::ingest_triple`:
//!    re-delivered triples are no-ops, not duplicate evidence);
//! 2. **extends blocking** through `BlockingIndex::append_triple`, which
//!    emits exactly the new pairs — the pair set is a monotone function
//!    of the arrival sequence, so batch and incremental blocking agree
//!    by construction;
//! 3. **appends** the new linking/pair variables and their F1–F6, U1–U7
//!    factors to the factor graph (ids and adjacency of existing nodes
//!    are never disturbed), reusing the same per-distinct-phrase feature
//!    caches across deltas;
//! 4. **warm-starts LBP** via [`LbpEngine::resume`]: prior messages are
//!    seeded and only the *dirty* factor blocks — the ones this delta
//!    appended — are primed into the residual queue, so convergence work
//!    is proportional to how far the delta's influence actually reaches,
//!    not to the graph size;
//! 5. **re-decodes** with marginals refreshed only for the connected
//!    components the delta touched (tracked by a growing [`UnionFind`]
//!    over variables); untouched components keep their messages — and
//!    therefore marginals — bit-for-bit.
//!
//! The correctness contract, enforced by `tests/incremental.rs` and the
//! `jocl_bench` stream gate: **N deltas followed by convergence decode
//! identically to a from-scratch batch run on the union** (same frozen
//! [`Signals`], same config). Signals are a session resource: IDF, SGNS,
//! AMIE and friends are built once (offline or at session start) and
//! frozen, exactly like `JoclConfig::pretrained_params` weights in
//! serving mode.
//!
//! One precondition: the contract holds while the
//! `JoclConfig::max_triangles` budget is not exhausted. The budget is a
//! global cap spent in build order, and a streamed build necessarily
//! spends it in arrival order while a batch build spends it in
//! family-sorted order — once it runs out, the two keep *different*
//! U1–U3 triangle subsets. [`DeltaStats::triangle_budget_exhausted`]
//! reports when a session crosses that line; raise the budget (or treat
//! the session as approximate from then on) if exact batch parity
//! matters.
//!
//! Training is deliberately out of scope per delta: learn weights
//! offline with the batch pipeline, persist them with
//! `crate::persist::save_params`, and hand them to the session through
//! `JoclConfig::pretrained_params`.
//!
//! ## Retraction and revision (serving deltas)
//!
//! Real OIE feeds do not only append: sources retract triples and
//! correct them. [`IncrementalJocl::apply_ops`] generalizes the delta to
//! [`DeltaOp::Add`] / [`DeltaOp::Retract`] / [`DeltaOp::Revise`] while
//! keeping the factor graph **append-only physically**: a retracted
//! triple's mention and pair variables stay in the graph, but every
//! factor touching one of them is *tombstoned*
//! ([`jocl_fg::FactorGraph::neutralize_factor`] — its potential becomes
//! identically zero in the log domain), its messages are reset to
//! uniform, and the tombstones plus their live neighbor factors are
//! primed into the warm start. The graph therefore **shrinks
//! semantically** — at the fixed point the live slice of the model is
//! the model a batch build on the surviving triples would produce — and
//! [`crate::decode::decode_live`] masks the dead mentions out of the
//! output. A revision is a retract + add sharing one warm start, and a
//! re-add of previously retracted content mints a fresh triple id (the
//! OKB dedup entry is forgotten on retraction) with fresh variables.
//!
//! Tombstones accumulate; [`IncrementalJocl::tombstone_density`] reports
//! the dead-factor fraction and [`IncrementalJocl::compact`] rebuilds
//! the session cold from the survivors (the serving wrapper
//! `jocl_serve` triggers this automatically past a configured
//! threshold).
//!
//! **Parity contract with retraction**: after any interleaving of
//! add/retract/revise deltas, the live decode equals a from-scratch
//! batch run on the surviving triples (in original arrival order) —
//! with two documented caveats on top of the triangle-budget one above.
//! First, the blocking caps (`max_group_clique`, `cross_cap`, the
//! token-DF hub cutoff) are consumed at *arrival time*, so a retracted
//! triple that occupied a cap slot can leave the session without a
//! survivor-survivor pair the reference run would have formed; parity
//! is exact while the caps do not bind (raise them when exact parity
//! matters — retracting recent arrivals, the common serving case, never
//! trips this because caps were consumed by the *prefix* both runs
//! share). Second, as everywhere in the warm path, touched regions
//! re-converge to within `lbp.tol` of the reference fixed point, so
//! decode equality relies on no marginal sitting inside that band of a
//! decode threshold.
//!
//! ## Session persistence
//!
//! [`IncrementalJocl::export_state`] serializes the entire warm session
//! — OKB (including its dedup index), blocking index, factor graph,
//! parameters, committed messages, marginals, component tracker, live
//! mask and tombstones — through the `jocl_kb::snap` binary codec, and
//! [`IncrementalJocl::import_state`] rebuilds a session that resumes
//! with **bitwise-identical** messages: `snapshot → restart → delta`
//! decodes exactly like the uninterrupted session. The CKB, the frozen
//! [`Signals`] and the [`JoclConfig`] are *not* part of the state — they
//! are shared serving resources the restarting process supplies, and the
//! file-level wrapper in `jocl_serve` fingerprints the config to catch
//! mismatches.

use crate::blocking::{BlockingDelta, BlockingIndex};
use crate::builder::{
    entity_link_features, equality_table, init_params, np_canon_features, ordered_key,
    pair_potential, relation_link_features, rp_canon_features, transitivity_scores, BuildStats,
    GraphPlan, LinkValues,
};
use crate::config::{classes, JoclConfig, Variant};
use crate::decode::{decode_live, Diagnostics, JoclOutput};
use crate::pipeline::lbp_options;
use crate::signals::Signals;
use jocl_cluster::UnionFind;
use jocl_fg::lbp::LbpEngine;
use jocl_fg::{FactorGraph, FactorId, LbpMessages, LbpResult, Marginals, Potential, VarId};
use jocl_kb::snap::{SnapReader, SnapWriter};
use jocl_kb::{
    CandidateGen, Ckb, EntityId, KbError, NpMention, NpSlot, Okb, RelationId, RpMention, Triple,
    TripleId,
};
use jocl_text::fx::{FxHashMap, FxHashSet};

/// Cached handles for the incremental-engine metrics, registered once
/// so `apply_ops`/`compact` never touch the registry mutex. Purely
/// observational: nothing here feeds back into inference, so decode is
/// bitwise-identical with metrics on or off.
struct DeltaMetrics {
    apply_ops_ns: std::sync::Arc<jocl_obs::Histogram>,
    compaction_ns: std::sync::Arc<jocl_obs::Histogram>,
    compactions_total: std::sync::Arc<jocl_obs::Counter>,
    last_compaction_ms: std::sync::Arc<jocl_obs::Gauge>,
}

fn delta_metrics() -> &'static DeltaMetrics {
    static M: std::sync::OnceLock<DeltaMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| DeltaMetrics {
        apply_ops_ns: jocl_obs::registry().histogram("jocl_apply_ops_ns", &[]),
        compaction_ns: jocl_obs::registry().histogram("jocl_compaction_ns", &[]),
        compactions_total: jocl_obs::registry().counter("jocl_compactions_total", &[]),
        last_compaction_ms: jocl_obs::registry().gauge("jocl_last_compaction_ms", &[]),
    })
}

/// One serving-delta operation. Operations address triples by
/// **content** (the natural key of an OIE feed); ids are internal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DeltaOp {
    /// Ingest a triple (idempotent: re-delivery of present content is a
    /// counted no-op).
    Add(Triple),
    /// Remove a triple's evidence from the model. Retracting content
    /// that is not (or no longer) present is a counted no-op.
    Retract(Triple),
    /// Correct a triple: retract `old` and add `new` under one warm
    /// start.
    Revise {
        /// The triple as previously delivered.
        old: Triple,
        /// Its corrected form.
        new: Triple,
    },
}

/// What one [`IncrementalJocl::apply_delta`] call did.
#[derive(Debug, Clone)]
pub struct DeltaStats {
    /// Triples actually appended (fresh).
    pub appended: usize,
    /// Triples ignored because an identical triple was already present.
    pub duplicates: usize,
    /// Triples tombstoned by this delta's retract/revise ops.
    pub retracted: usize,
    /// Retract/revise ops whose `old` content was not present (no-ops).
    pub missed_retracts: usize,
    /// Revise ops applied (each also counts toward `appended` and/or
    /// `retracted`/`missed_retracts` as its halves land).
    pub revised: usize,
    /// Factors neutralized by this delta's retractions.
    pub tombstoned_factors: usize,
    /// Live (non-retracted) triples after the delta.
    pub live_triples: usize,
    /// Dead-factor fraction after the delta (the compaction trigger).
    pub tombstone_density: f64,
    /// Whether the serving wrapper compacted the session after this
    /// delta (always `false` from `apply_ops` itself).
    pub compacted: bool,
    /// New blocked pairs across the three families.
    pub new_pairs: usize,
    /// Variables appended to the factor graph.
    pub new_vars: usize,
    /// Factors appended to the factor graph.
    pub new_factors: usize,
    /// Connected components (of the variable graph) the delta touched.
    pub affected_components: usize,
    /// Total connected components after the delta.
    pub total_components: usize,
    /// Variables whose marginals were recomputed (the rest were reused
    /// from the previous decode).
    pub refreshed_vars: usize,
    /// True once the session's `max_triangles` budget has forced a
    /// transitivity triangle to be dropped — from that point exact
    /// decode parity with a batch build is no longer guaranteed (see
    /// the module docs). An exactly-consumed budget with nothing
    /// dropped keeps the flag false.
    pub triangle_budget_exhausted: bool,
    /// Whether LBP resumed from prior messages (false on the first
    /// non-trivial delta, which runs cold).
    pub warm_started: bool,
    /// The warm (or cold) LBP run of this delta.
    pub lbp: LbpResult,
}

/// Result of one delta: the full decoded output on the union so far,
/// plus what the delta cost.
#[derive(Debug, Clone)]
pub struct DeltaOutput {
    /// Decode over the *entire* session OKB (identical to a batch run on
    /// the union — see the module docs).
    pub output: JoclOutput,
    /// Incremental bookkeeping.
    pub stats: DeltaStats,
}

/// Per-family pair-variable adjacency for incremental transitivity
/// closure: `edges[(i, j)]` (i < j) is the pair variable, `adj` the
/// undirected neighbor lists.
#[derive(Debug, Clone, Default)]
struct TriangleIndex {
    edges: FxHashMap<(u32, u32), VarId>,
    adj: FxHashMap<u32, Vec<u32>>,
}

impl TriangleIndex {
    fn insert(&mut self, a: TripleId, b: TripleId, v: VarId) {
        self.edges.insert((a.0, b.0), v);
        self.adj.entry(a.0).or_default().push(b.0);
        self.adj.entry(b.0).or_default().push(a.0);
    }
}

/// A persistent canonicalization + linking session over a streaming OKB.
///
/// Borrows the CKB and the frozen [`Signals`] (they are shared,
/// read-only serving resources); owns everything that grows. `Clone`
/// forks the whole warm state — benchmarks use this to replay one delta
/// against an identical warm session repeatedly.
#[derive(Clone)]
pub struct IncrementalJocl<'a> {
    config: JoclConfig,
    ckb: &'a Ckb,
    signals: &'a Signals,
    okb: Okb,
    blocking: BlockingIndex,
    plan: GraphPlan,
    /// Messages of the last run (None before the first delta).
    messages: Option<LbpMessages>,
    /// Whether the last run actually converged. If it did not (e.g. the
    /// iteration budget ran out), the next delta re-primes **every**
    /// factor instead of just its own dirty set: the stale above-`tol`
    /// residuals the aborted drain left behind must re-enter the queue,
    /// or a later "converged" report would certify nothing.
    prior_converged: bool,
    /// Cached marginals per variable, refreshed per affected component.
    marginals: Vec<Vec<f64>>,
    /// Connected components over variables (factors union their vars).
    components: UnionFind,
    /// Candidate + feature (+ side-information probability) cache per
    /// distinct lowercase NP phrase.
    np_values: FxHashMap<String, LinkValues<EntityId>>,
    /// Candidate + feature (+ side-information probability) cache per
    /// distinct lowercase RP phrase.
    rp_values: FxHashMap<String, LinkValues<RelationId>>,
    /// F1/F3 similarity cache per ordered lowercase phrase pair.
    np_pair_sims: FxHashMap<(String, String), Vec<f64>>,
    /// F2 similarity cache per ordered lowercase phrase pair.
    rp_pair_sims: FxHashMap<(String, String), Vec<f64>>,
    /// Pair-graph adjacency per family (subject, predicate, object).
    tri: [TriangleIndex; 3],
    /// Liveness per triple id (`false` = retracted). Always sized to the
    /// OKB after a delta.
    live: Vec<bool>,
    /// Tombstoned (neutralized) factors, sized to the factor count.
    dead_factors: Vec<bool>,
    /// Count of `true` entries in `dead_factors`.
    num_dead_factors: usize,
    /// Count of retracted triples still physically present.
    num_dead_triples: usize,
    /// Remaining transitivity-triangle budget (`config.max_triangles`).
    triangle_budget: usize,
    /// Set once a triangle was actually dropped for lack of budget (an
    /// exactly-consumed budget with nothing skipped keeps parity).
    triangles_skipped: bool,
    /// Message updates across the whole session (all deltas).
    pub total_message_updates: u64,
}

impl std::fmt::Debug for IncrementalJocl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalJocl")
            .field("triples", &self.okb.len())
            .field("live_triples", &self.num_live())
            .field("vars", &self.plan.graph.num_vars())
            .field("factors", &self.plan.graph.num_factors())
            .field("dead_factors", &self.num_dead_factors)
            .field("warm", &self.messages.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a> IncrementalJocl<'a> {
    /// Open a session with an empty OKB.
    ///
    /// # Panics
    /// Panics if `config.pretrained_params` is set with a shape that
    /// does not match `config.features` (stale weights must fail fast,
    /// exactly as in the batch serving path).
    pub fn new(config: JoclConfig, ckb: &'a Ckb, signals: &'a Signals) -> Self {
        let (mut params, groups) = init_params(config.features);
        if let Some(pre) = &config.pretrained_params {
            assert_eq!(
                pre.num_groups(),
                params.num_groups(),
                "pretrained params have a different group count than the session layout"
            );
            for g in 0..pre.num_groups() {
                assert_eq!(
                    pre.group(g).len(),
                    params.group(g).len(),
                    "pretrained group {g} has a different shape than the session layout"
                );
            }
            params = pre.clone();
        }
        let plan = GraphPlan {
            graph: FactorGraph::new(),
            params,
            groups,
            np_link_vars: Vec::new(),
            np_candidates: Vec::new(),
            rp_link_vars: Vec::new(),
            rp_candidates: Vec::new(),
            subj_pair_vars: Vec::new(),
            pred_pair_vars: Vec::new(),
            obj_pair_vars: Vec::new(),
            stats: BuildStats::default(),
        };
        Self {
            blocking: BlockingIndex::new(&config),
            triangle_budget: config.max_triangles,
            config,
            ckb,
            signals,
            okb: Okb::new(),
            plan,
            messages: None,
            prior_converged: true,
            marginals: Vec::new(),
            components: UnionFind::new(0),
            np_values: FxHashMap::default(),
            rp_values: FxHashMap::default(),
            np_pair_sims: FxHashMap::default(),
            rp_pair_sims: FxHashMap::default(),
            tri: [TriangleIndex::default(), TriangleIndex::default(), TriangleIndex::default()],
            live: Vec::new(),
            dead_factors: Vec::new(),
            num_dead_factors: 0,
            num_dead_triples: 0,
            triangles_skipped: false,
            total_message_updates: 0,
        }
    }

    /// The session OKB (the union of all applied deltas, deduplicated).
    pub fn okb(&self) -> &Okb {
        &self.okb
    }

    /// The active configuration.
    pub fn config(&self) -> &JoclConfig {
        &self.config
    }

    /// The shared curated KB this session links against.
    pub fn ckb(&self) -> &'a Ckb {
        self.ckb
    }

    /// Triples currently in the session.
    pub fn len(&self) -> usize {
        self.okb.len()
    }

    /// True before any triple has been ingested.
    pub fn is_empty(&self) -> bool {
        self.okb.is_empty()
    }

    /// Ingest a batch of arriving triples, converge the factor graph
    /// against the warm state, and decode the union. See the module docs
    /// for the five stages. An empty or fully-duplicate delta is cheap:
    /// nothing is appended, LBP performs zero updates, and the previous
    /// decode is reproduced. Equivalent to [`IncrementalJocl::apply_ops`]
    /// with every triple wrapped in [`DeltaOp::Add`].
    pub fn apply_delta(&mut self, triples: &[Triple]) -> DeltaOutput {
        let ops: Vec<DeltaOp> = triples.iter().cloned().map(DeltaOp::Add).collect();
        self.apply_ops(&ops)
    }

    /// Apply one serving delta of add / retract / revise operations (in
    /// order), converge against the warm state, and decode the live
    /// triple set. See the module docs for append semantics and the
    /// retraction/tombstone semantics.
    pub fn apply_ops(&mut self, ops: &[DeltaOp]) -> DeltaOutput {
        let sw = jocl_obs::Stopwatch::start();
        let _span = jocl_obs::span!("apply_ops");
        let out = self.apply_ops_inner(ops);
        delta_metrics().apply_ops_ns.record(sw.ns());
        out
    }

    fn apply_ops_inner(&mut self, ops: &[DeltaOp]) -> DeltaOutput {
        // --- 1. sequential op scan: idempotent ingest + retraction ------
        let mut new_ids: Vec<TripleId> = Vec::new();
        let mut retracted_ids: Vec<TripleId> = Vec::new();
        let mut duplicates = 0usize;
        let mut missed_retracts = 0usize;
        let mut revised = 0usize;
        let mut ingest_add = |okb: &mut Okb, t: &Triple, new_ids: &mut Vec<TripleId>| {
            let (id, fresh) = okb.ingest_triple(t.clone());
            if fresh {
                new_ids.push(id);
            } else {
                duplicates += 1;
            }
        };
        let mut ingest_retract =
            |okb: &mut Okb, t: &Triple, out: &mut Vec<TripleId>| match okb.find_triple(t) {
                Some(id) => {
                    okb.forget_triple(id);
                    out.push(id);
                }
                None => missed_retracts += 1,
            };
        for op in ops {
            match op {
                DeltaOp::Add(t) => ingest_add(&mut self.okb, t, &mut new_ids),
                DeltaOp::Retract(t) => ingest_retract(&mut self.okb, t, &mut retracted_ids),
                DeltaOp::Revise { old, new } => {
                    revised += 1;
                    ingest_retract(&mut self.okb, old, &mut retracted_ids);
                    ingest_add(&mut self.okb, new, &mut new_ids);
                }
            }
        }
        self.live.resize(self.okb.len(), true);
        for &id in &retracted_ids {
            self.live[id.idx()] = false;
        }
        self.num_dead_triples += retracted_ids.len();
        // Triples both added and retracted within this delta never get
        // variables at all; the rest of the fresh set does.
        let live_new_ids: Vec<TripleId> =
            new_ids.iter().copied().filter(|id| self.live[id.idx()]).collect();

        // --- 2. incremental blocking -------------------------------------
        // Every fresh triple enters the blocking index (its id exists and
        // the index is the arrival log), but pairs with a tombstoned
        // endpoint are dropped before they can become variables: the
        // reference batch run on the survivors has no such pair either.
        let mut delta = BlockingDelta::default();
        for &id in &new_ids {
            let triple = self.okb.triple(id).clone();
            let d = self.blocking.append_triple(id, &triple, self.signals);
            delta.subj_pairs.extend(d.subj_pairs);
            delta.pred_pairs.extend(d.pred_pairs);
            delta.obj_pairs.extend(d.obj_pairs);
        }
        for pairs in [&mut delta.subj_pairs, &mut delta.pred_pairs, &mut delta.obj_pairs] {
            pairs.retain(|&(a, b)| self.live[a.idx()] && self.live[b.idx()]);
            pairs.sort_unstable();
        }

        // --- 3. append-only graph growth + tombstoning -------------------
        let first_new_var = self.plan.graph.num_vars();
        let first_new_factor = self.plan.graph.num_factors();
        self.extend_plan(&live_new_ids, &delta);
        let num_vars = self.plan.graph.num_vars();
        let num_factors = self.plan.graph.num_factors();
        self.dead_factors.resize(num_factors, false);

        self.components.grow(num_vars);
        for f in first_new_factor..num_factors {
            let vars = self.plan.graph.factor_vars(FactorId(f as u32));
            for w in vars.windows(2) {
                self.components.union(w[0].idx(), w[1].idx());
            }
        }

        // Neutralize every factor that carries a retracted triple's
        // evidence. Their messages are reset below so the warm start
        // lands them exactly on the neutral fixed point.
        let newly_dead = self.tombstone(&retracted_ids);
        self.num_dead_factors += newly_dead.len();

        // --- 4. warm-started inference -----------------------------------
        let opts = lbp_options(&self.config);
        // After an unconverged run, prime the *whole* factor set: the
        // warm messages are still a better start than uniform, but only
        // a full priming lets an empty residual queue certify a global
        // fixed point again.
        let dirty: Vec<u32> = if self.prior_converged {
            let mut dirty: Vec<u32> = (first_new_factor as u32..num_factors as u32).collect();
            dirty.extend_from_slice(&newly_dead);
            // A tombstone's variables feed *live* neighbor factors whose
            // inputs just changed (the retracted evidence vanished);
            // prime them so the change propagates outward.
            for &f in &newly_dead {
                for &v in self.plan.graph.factor_vars(FactorId(f)) {
                    for (g, _) in self.plan.graph.var_factors(v) {
                        if !self.dead_factors[g.idx()] {
                            dirty.push(g.0);
                        }
                    }
                }
            }
            dirty.sort_unstable();
            dirty.dedup();
            dirty
        } else {
            (0..num_factors as u32).collect()
        };
        let warm_started = self.messages.is_some();
        // A delta that neither grew nor tombstoned anything leaves the
        // converged messages the fixed point: skip inference entirely
        // (either schedule mode).
        let graph_unchanged = warm_started && dirty.is_empty();
        let mut engine = LbpEngine::new(&self.plan.graph);
        let lbp = match &self.messages {
            Some(prior) if graph_unchanged => {
                engine.import_messages(prior);
                LbpResult { iterations: 0, converged: true, residual: 0.0, message_updates: 0 }
            }
            Some(prior) => {
                engine.import_messages(prior);
                engine.reset_factor_messages(&newly_dead);
                engine.resume_imported(&self.plan.params, &opts, &dirty)
            }
            None => engine.run(&self.plan.params, &opts),
        };
        self.total_message_updates += lbp.message_updates;

        // Components this delta touched (after the unions above, a new
        // factor bridging two old components reaches both).
        let mut affected: FxHashSet<usize> = FxHashSet::default();
        for &f in &dirty {
            for &v in self.plan.graph.factor_vars(FactorId(f)) {
                affected.insert(self.components.find(v.idx()));
            }
        }

        // --- 5. re-decode affected components ----------------------------
        // In residual mode an untouched component's messages are
        // bit-for-bit unchanged, so its cached marginals stay exact. The
        // synchronous warm path sweeps everything (messages drift within
        // tol), so refresh everything.
        let refresh_all = !graph_unchanged
            && (!warm_started
                || matches!(opts.mode, jocl_fg::ScheduleMode::Synchronous)
                || !lbp.converged);
        self.marginals.resize(num_vars, Vec::new());
        let mut refreshed = 0usize;
        for v in 0..num_vars {
            let needs = refresh_all
                || self.marginals[v].is_empty()
                || affected.contains(&self.components.find(v));
            if needs {
                self.marginals[v] = engine.var_marginal(VarId(v as u32));
                refreshed += 1;
            }
        }
        self.messages = Some(engine.export_messages_with(self.config.message_store));
        self.prior_converged = lbp.converged;
        drop(engine);

        let diagnostics = Diagnostics {
            lbp,
            num_vars,
            num_factors,
            pair_counts: (
                self.plan.subj_pair_vars.len(),
                self.plan.pred_pair_vars.len(),
                self.plan.obj_pair_vars.len(),
            ),
            triangles: self.plan.stats.triangles,
            train_epochs: 0,
            train_grad_norm: f64::NAN,
        };
        let marginals = Marginals::from_probs(self.marginals.clone());
        let live_mask = (self.num_dead_triples > 0).then_some(self.live.as_slice());
        let mut output =
            decode_live(&self.okb, &self.plan, &marginals, &self.config, diagnostics, live_mask);
        output.learned_params = Some(self.plan.params.clone());

        DeltaOutput {
            output,
            stats: DeltaStats {
                appended: new_ids.len(),
                duplicates,
                retracted: retracted_ids.len(),
                missed_retracts,
                revised,
                tombstoned_factors: newly_dead.len(),
                live_triples: self.num_live(),
                tombstone_density: self.tombstone_density(),
                compacted: false,
                new_pairs: delta.len(),
                new_vars: num_vars - first_new_var,
                new_factors: num_factors - first_new_factor,
                affected_components: affected.len(),
                total_components: self.components.num_components(),
                refreshed_vars: refreshed,
                triangle_budget_exhausted: self.triangles_skipped,
                warm_started,
                lbp,
            },
        }
    }

    /// Neutralize every not-yet-dead factor adjacent to a variable owned
    /// by one of the `retracted` triples (their link variables, and every
    /// pair variable with a retracted endpoint). Returns the sorted list
    /// of newly tombstoned factor ids.
    fn tombstone(&mut self, retracted: &[TripleId]) -> Vec<u32> {
        if retracted.is_empty() {
            return Vec::new();
        }
        let mut dead_vars: Vec<VarId> = Vec::new();
        for &t in retracted {
            for slot in [NpSlot::Subject, NpSlot::Object] {
                if let Some(v) = self.plan.np_link_vars[NpMention { triple: t, slot }.dense()] {
                    dead_vars.push(v);
                }
            }
            if let Some(v) = self.plan.rp_link_vars[RpMention(t).dense()] {
                dead_vars.push(v);
            }
            for tri in &self.tri {
                if let Some(nbrs) = tri.adj.get(&t.0) {
                    for &n in nbrs {
                        let key = (t.0.min(n), t.0.max(n));
                        if let Some(&v) = tri.edges.get(&key) {
                            dead_vars.push(v);
                        }
                    }
                }
            }
        }
        dead_vars.sort_unstable();
        dead_vars.dedup();
        let mut newly: Vec<u32> = Vec::new();
        for &v in &dead_vars {
            let adjacent: Vec<FactorId> = self.plan.graph.var_factors(v).map(|(f, _)| f).collect();
            for f in adjacent {
                if !self.dead_factors[f.idx()] {
                    self.dead_factors[f.idx()] = true;
                    self.plan.graph.neutralize_factor(f);
                    newly.push(f.0);
                }
            }
        }
        newly.sort_unstable();
        newly
    }

    /// Decode the **cached** marginals — no inference, no state
    /// mutation. This is the read path of a freshly restored session:
    /// reproducing its last decode must not touch the bitwise-restored
    /// messages, even when the snapshot was taken after an unconverged
    /// delta (where a warm `apply_ops` would re-prime every factor and
    /// run a full sweep). The attached `LbpResult` is a zero-work stub
    /// whose `converged` reports the persisted convergence state.
    pub fn decode_current(&self) -> JoclOutput {
        let diagnostics = Diagnostics {
            lbp: LbpResult {
                iterations: 0,
                converged: self.prior_converged,
                residual: 0.0,
                message_updates: 0,
            },
            num_vars: self.plan.graph.num_vars(),
            num_factors: self.plan.graph.num_factors(),
            pair_counts: (
                self.plan.subj_pair_vars.len(),
                self.plan.pred_pair_vars.len(),
                self.plan.obj_pair_vars.len(),
            ),
            triangles: self.plan.stats.triangles,
            train_epochs: 0,
            train_grad_norm: f64::NAN,
        };
        let marginals = Marginals::from_probs(self.marginals.clone());
        let live_mask = (self.num_dead_triples > 0).then_some(self.live.as_slice());
        let mut output =
            decode_live(&self.okb, &self.plan, &marginals, &self.config, diagnostics, live_mask);
        output.learned_params = Some(self.plan.params.clone());
        output
    }

    /// Variables in the live factor graph (tombstoned ones included —
    /// the graph is append-only physically).
    pub fn num_vars(&self) -> usize {
        self.plan.graph.num_vars()
    }

    /// Factors in the live factor graph (tombstones included).
    pub fn num_factors(&self) -> usize {
        self.plan.graph.num_factors()
    }

    /// Live (non-retracted) triples currently in the session.
    pub fn num_live(&self) -> usize {
        self.okb.len() - self.num_dead_triples
    }

    /// Whether triple `id` is live (ids from before the first delta that
    /// retracted anything are always live).
    pub fn is_live(&self, id: TripleId) -> bool {
        self.live.get(id.idx()).copied().unwrap_or(true)
    }

    /// The surviving triples in arrival order — what a from-scratch
    /// batch run (and [`IncrementalJocl::compact`]) would ingest.
    pub fn live_triples(&self) -> Vec<Triple> {
        self.okb.triples().filter(|(id, _)| self.is_live(*id)).map(|(_, t)| t.clone()).collect()
    }

    /// Fraction of factors that are tombstones — the wasted inference
    /// capacity retractions have accumulated, and the quantity serving
    /// compaction thresholds are expressed in. 0.0 for a fresh or
    /// freshly compacted session.
    pub fn tombstone_density(&self) -> f64 {
        if self.plan.graph.num_factors() == 0 {
            0.0
        } else {
            self.num_dead_factors as f64 / self.plan.graph.num_factors() as f64
        }
    }

    /// Rebuild the session **cold** from the surviving triples: fresh
    /// compact triple ids, no tombstoned variables or factors, one batch
    /// LBP run on the survivors. Decode is unchanged (the tombstone
    /// parity contract is exactly that the live slice already decodes
    /// like this rebuild); what compaction buys back is graph size and
    /// per-delta cost. The per-phrase feature caches survive (they are
    /// pure functions of the frozen signals), as does the session-total
    /// message-update counter.
    pub fn compact(&mut self) -> DeltaOutput {
        let sw = jocl_obs::Stopwatch::start();
        let _span = jocl_obs::span!("compaction");
        let survivors = self.live_triples();
        let mut fresh = IncrementalJocl::new(self.config.clone(), self.ckb, self.signals);
        fresh.np_values = std::mem::take(&mut self.np_values);
        fresh.rp_values = std::mem::take(&mut self.rp_values);
        fresh.np_pair_sims = std::mem::take(&mut self.np_pair_sims);
        fresh.rp_pair_sims = std::mem::take(&mut self.rp_pair_sims);
        fresh.total_message_updates = self.total_message_updates;
        let mut out = fresh.apply_delta(&survivors);
        out.stats.compacted = true;
        *self = fresh;
        let m = delta_metrics();
        m.compaction_ns.record(sw.ns());
        m.compactions_total.inc();
        m.last_compaction_ms.set(sw.ms_u64());
        out
    }

    /// Serialize the complete warm-session state (see the module docs:
    /// everything that grows — OKB, blocking, plan, messages, marginals,
    /// components, liveness — but not the shared CKB/signals/config).
    /// The per-phrase feature caches are deliberately omitted: they are
    /// pure functions of the frozen signals and refill on demand with
    /// bitwise-identical values.
    pub fn export_state(&mut self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.okb.export_state(&mut w);
        self.blocking.export_state(&mut w);
        self.plan.export_state(&mut w);
        w.tag("MSG");
        match &self.messages {
            None => w.bool(false),
            Some(m) => {
                w.bool(true);
                w.usize(m.num_edges());
                write_arena(&mut w, m.fv());
                write_arena(&mut w, m.vf());
            }
        }
        w.tag("SESS");
        w.bool(self.prior_converged);
        w.usize(self.marginals.len());
        for m in &self.marginals {
            w.f64_slice_packed(m);
        }
        let (parent, size, components) = self.components.export_state();
        w.u32_slice_packed(parent);
        w.u32_slice_packed(size);
        w.usize(components);
        w.bool_slice_packed(&self.live);
        w.bool_slice_packed(&self.dead_factors);
        w.usize(self.triangle_budget);
        w.bool(self.triangles_skipped);
        w.u64(self.total_message_updates);
        w.into_bytes()
    }

    /// Rebuild a session from [`IncrementalJocl::export_state`] bytes
    /// plus the shared serving resources. The restored session holds the
    /// *bitwise*-identical committed messages and marginals, so its next
    /// delta behaves exactly like the uninterrupted session's would.
    /// Corruption and cross-state inconsistencies surface as typed
    /// [`KbError`]s, never as panics or silently wrong state.
    pub fn import_state(
        bytes: &[u8],
        config: JoclConfig,
        ckb: &'a Ckb,
        signals: &'a Signals,
    ) -> Result<Self, KbError> {
        let mut r = SnapReader::new(bytes);
        let okb = Okb::import_state(&mut r)?;
        let blocking = BlockingIndex::import_state(&mut r, &config, okb.len())?;
        let plan = GraphPlan::import_state(&mut r, &config)?;
        let num_vars = plan.graph.num_vars();
        let num_factors = plan.graph.num_factors();
        // Cross-validate the plan's mention maps against the OKB.
        if plan.np_link_vars.len() != okb.num_np_mentions()
            || plan.np_candidates.len() != okb.num_np_mentions()
            || plan.rp_link_vars.len() != okb.num_rp_mentions()
            || plan.rp_candidates.len() != okb.num_rp_mentions()
        {
            return Err(r.corrupt(format!(
                "plan mention maps ({} np / {} rp) disagree with the OKB ({} np / {} rp)",
                plan.np_link_vars.len(),
                plan.rp_link_vars.len(),
                okb.num_np_mentions(),
                okb.num_rp_mentions()
            )));
        }
        // Pair registries address triples of this OKB (decode and the
        // tombstone machinery index the live mask and mention maps with
        // them) and must be ordered.
        for list in [&plan.subj_pair_vars, &plan.pred_pair_vars, &plan.obj_pair_vars] {
            if let Some(&(a, b, _)) =
                list.iter().find(|&&(a, b, _)| a.0 >= b.0 || b.idx() >= okb.len())
            {
                return Err(r.corrupt(format!(
                    "pair ({}, {}) is unordered or out of range for {} triples",
                    a.0,
                    b.0,
                    okb.len()
                )));
            }
        }
        r.expect_tag("MSG")?;
        let messages = if r.bool()? {
            let edges = r.usize()?;
            let fv = read_arena(&mut r, &config)?;
            let vf = read_arena(&mut r, &config)?;
            let expected_edges: usize =
                (0..num_factors).map(|f| plan.graph.factor_vars(FactorId(f as u32)).len()).sum();
            let expected_arena: usize = (0..num_factors)
                .flat_map(|f| plan.graph.factor_vars(FactorId(f as u32)))
                .map(|&v| plan.graph.cardinality(v) as usize)
                .sum();
            if edges != expected_edges || fv.len() != expected_arena {
                return Err(r.corrupt(format!(
                    "message snapshot ({edges} edges, {} slots) does not fit the graph \
                     ({expected_edges} edges, {expected_arena} slots)",
                    fv.len()
                )));
            }
            Some(LbpMessages::import_state(fv, vf, edges).map_err(|msg| r.corrupt(msg))?)
        } else {
            None
        };
        r.expect_tag("SESS")?;
        let prior_converged = r.bool()?;
        let num_marginals = r.seq_len(1)?;
        if num_marginals != num_vars {
            return Err(
                r.corrupt(format!("{num_marginals} cached marginals for {num_vars} variables"))
            );
        }
        let mut marginals = Vec::with_capacity(num_marginals);
        for v in 0..num_marginals {
            let m = r.f64_vec_packed()?;
            if !m.is_empty() && m.len() != plan.graph.cardinality(VarId(v as u32)) as usize {
                return Err(r.corrupt(format!("marginal {v} has the wrong cardinality")));
            }
            marginals.push(m);
        }
        let parent = r.u32_vec_packed()?;
        let size = r.u32_vec_packed()?;
        let num_components = r.usize()?;
        let components =
            UnionFind::import_state(parent, size, num_components).map_err(|msg| r.corrupt(msg))?;
        if components.len() != num_vars {
            return Err(r.corrupt(format!(
                "component tracker covers {} items for {num_vars} variables",
                components.len()
            )));
        }
        let live = r.bool_vec_packed()?;
        if live.len() != okb.len() {
            return Err(r.corrupt(format!(
                "live mask covers {} of {} triples",
                live.len(),
                okb.len()
            )));
        }
        let dead_factors = r.bool_vec_packed()?;
        if dead_factors.len() != num_factors {
            return Err(r.corrupt(format!(
                "tombstone mask covers {} of {num_factors} factors",
                dead_factors.len()
            )));
        }
        let triangle_budget = r.usize()?;
        let triangles_skipped = r.bool()?;
        let total_message_updates = r.u64()?;
        r.expect_end()?;

        // Rebuild the pair-graph adjacency from the plan's registries
        // (pure function of them; insertion order does not influence any
        // decision downstream — triangle candidates are collected into a
        // sorted set).
        let mut tri =
            [TriangleIndex::default(), TriangleIndex::default(), TriangleIndex::default()];
        for (fam, list) in [&plan.subj_pair_vars, &plan.pred_pair_vars, &plan.obj_pair_vars]
            .into_iter()
            .enumerate()
        {
            for &(a, b, v) in list {
                tri[fam].insert(a, b, v);
            }
        }
        let num_dead_triples = live.iter().filter(|&&l| !l).count();
        let num_dead_factors = dead_factors.iter().filter(|&&d| d).count();
        Ok(Self {
            config,
            ckb,
            signals,
            okb,
            blocking,
            plan,
            messages,
            prior_converged,
            marginals,
            components,
            np_values: FxHashMap::default(),
            rp_values: FxHashMap::default(),
            np_pair_sims: FxHashMap::default(),
            rp_pair_sims: FxHashMap::default(),
            tri,
            live,
            dead_factors,
            num_dead_factors,
            num_dead_triples,
            triangle_budget,
            triangles_skipped,
            total_message_updates,
        })
    }

    /// Resident heap bytes of the session's owned state: OKB, blocking
    /// index, graph plan, committed messages, cached marginals and the
    /// liveness masks. The per-phrase feature caches are excluded — they
    /// are transient, refillable functions of the frozen signals, not
    /// part of the state a snapshot persists.
    pub fn heap_bytes(&self) -> usize {
        self.okb.heap_bytes()
            + self.blocking.heap_bytes()
            + self.plan.heap_bytes()
            + self.messages.as_ref().map_or(0, |m| m.heap_bytes())
            + self.marginals.iter().map(|m| m.capacity() * 8).sum::<usize>()
            + self.marginals.capacity() * std::mem::size_of::<Vec<f64>>()
            + self.live.capacity()
            + self.dead_factors.capacity()
    }

    /// Resident heap bytes of just the committed message arenas (the
    /// component the [`jocl_fg::MessageStore`] choice governs); 0 on a
    /// cold session. The `memory_scale` gate compares this across
    /// stores, isolated from the OKB/blocking/plan bytes the store
    /// cannot change.
    pub fn message_heap_bytes(&self) -> usize {
        self.messages.as_ref().map_or(0, |m| m.heap_bytes())
    }

    /// Append the delta's variables and factors to the plan. Mirrors the
    /// batch builder factor by factor: every potential value is computed
    /// by the same functions over the same frozen signals, so the grown
    /// graph carries the identical factors as a batch build on the union
    /// (only node *ids* differ, which decoding never observes).
    fn extend_plan(&mut self, new_ids: &[TripleId], delta: &BlockingDelta) {
        let fs = self.config.features;
        let with_linking = matches!(
            self.config.variant,
            Variant::Full | Variant::LinkOnly | Variant::NoConsistency
        );
        let with_canon = matches!(
            self.config.variant,
            Variant::Full | Variant::CanoOnly | Variant::NoConsistency
        );
        let with_consistency = matches!(self.config.variant, Variant::Full);
        let groups = self.plan.groups;

        self.plan.np_link_vars.resize(self.okb.num_np_mentions(), None);
        self.plan.np_candidates.resize(self.okb.num_np_mentions(), Vec::new());
        self.plan.rp_link_vars.resize(self.okb.num_rp_mentions(), None);
        self.plan.rp_candidates.resize(self.okb.num_rp_mentions(), Vec::new());

        // ---------------- linking variables + F4/F5/F6 -------------------
        if with_linking {
            let gen = CandidateGen::new(self.ckb, self.config.candidates.clone());
            for &t in new_ids {
                for slot in [NpSlot::Subject, NpSlot::Object] {
                    let m = NpMention { triple: t, slot };
                    // Cache values are computed from the canonical
                    // (lowercase) key, exactly like the batch builder —
                    // see its comment: only canonical inputs keep cache
                    // refills (including after a snapshot restore)
                    // bit-for-bit reproducible.
                    let key = self.okb.np_phrase(m).to_lowercase();
                    let side = crate::builder::active_side_info(&self.config);
                    let (cands, feats, side_probs) =
                        self.np_values.entry(key.clone()).or_insert_with(|| {
                            let scored = gen.entity_candidates(&key);
                            let mut cands: Vec<EntityId> = scored.iter().map(|s| s.id).collect();
                            let side_probs =
                                crate::builder::entity_side_probs(side, self.ckb, &key, &mut cands);
                            let feats: Vec<Vec<f64>> = cands
                                .iter()
                                .map(|&e| entity_link_features(self.signals, self.ckb, &key, e, fs))
                                .collect();
                            (cands, feats, side_probs)
                        });
                    if cands.is_empty() {
                        continue;
                    }
                    let var =
                        self.plan.graph.add_var_with_class(cands.len() as u32, classes::VAR_LINK);
                    let (group, class) = match slot {
                        NpSlot::Subject => (groups.alpha4, classes::F4),
                        NpSlot::Object => (groups.alpha6, classes::F6),
                    };
                    self.plan.graph.add_factor(
                        &[var],
                        Potential::Features { group, feats: feats.clone() },
                        class,
                    );
                    if let Some(probs) = side_probs {
                        // An appended factor lands in the dirty range
                        // `first_new_factor..`, so new side info primes
                        // only dirty blocks — exactly like F4/F6.
                        self.plan.graph.add_factor(
                            &[var],
                            Potential::from_probs(groups.gamma, probs.clone()),
                            classes::S1,
                        );
                    }
                    self.plan.np_link_vars[m.dense()] = Some(var);
                    self.plan.np_candidates[m.dense()] = cands.clone();
                }
                let m = RpMention(t);
                let key = self.okb.rp_phrase(m).to_lowercase();
                let side = crate::builder::active_side_info(&self.config);
                let (cands, feats, side_probs) =
                    self.rp_values.entry(key.clone()).or_insert_with(|| {
                        let scored = gen.relation_candidates(&key);
                        let mut cands: Vec<RelationId> = scored.iter().map(|s| s.id).collect();
                        let side_probs =
                            crate::builder::relation_side_probs(side, self.ckb, &key, &mut cands);
                        let feats: Vec<Vec<f64>> = cands
                            .iter()
                            .map(|&r| relation_link_features(self.signals, self.ckb, &key, r, fs))
                            .collect();
                        (cands, feats, side_probs)
                    });
                if !cands.is_empty() {
                    let var =
                        self.plan.graph.add_var_with_class(cands.len() as u32, classes::VAR_LINK);
                    self.plan.graph.add_factor(
                        &[var],
                        Potential::Features { group: groups.alpha5, feats: feats.clone() },
                        classes::F5,
                    );
                    if let Some(probs) = side_probs {
                        self.plan.graph.add_factor(
                            &[var],
                            Potential::from_probs(groups.gamma, probs.clone()),
                            classes::S2,
                        );
                    }
                    self.plan.rp_link_vars[m.dense()] = Some(var);
                    self.plan.rp_candidates[m.dense()] = cands.clone();
                }
            }
        }

        // ---------------- canonicalization variables + F1/F2/F3 ----------
        if with_canon {
            let tables = transitivity_scores();
            for (fam, new_pairs) in
                [&delta.subj_pairs, &delta.pred_pairs, &delta.obj_pairs].into_iter().enumerate()
            {
                let (group, class, u_class, beta_idx, slot) = match fam {
                    0 => (groups.alpha1, classes::F1, classes::U1, 0usize, Some(NpSlot::Subject)),
                    1 => (groups.alpha2, classes::F2, classes::U2, 1, None),
                    _ => (groups.alpha3, classes::F3, classes::U3, 2, Some(NpSlot::Object)),
                };
                // Pair variables and their feature factors.
                let mut new_vars: Vec<VarId> = Vec::with_capacity(new_pairs.len());
                for &(ti, tj) in new_pairs {
                    let (pa, pb) = {
                        let (ta, tb) = (self.okb.triple(ti), self.okb.triple(tj));
                        match slot {
                            Some(NpSlot::Subject) => (ta.subject.clone(), tb.subject.clone()),
                            Some(NpSlot::Object) => (ta.object.clone(), tb.object.clone()),
                            None => (ta.predicate.clone(), tb.predicate.clone()),
                        }
                    };
                    let cache = if slot.is_some() {
                        &mut self.np_pair_sims
                    } else {
                        &mut self.rp_pair_sims
                    };
                    // Similarities from the canonical ordered key, as in
                    // the batch builder (cache refills must be bit-exact).
                    let key = ordered_key(&pa, &pb);
                    let sims = cache.entry(key.clone()).or_insert_with(|| {
                        if slot.is_some() {
                            np_canon_features(self.signals, &key.0, &key.1, fs)
                        } else {
                            rp_canon_features(self.signals, &key.0, &key.1, fs)
                        }
                    });
                    let var = self.plan.graph.add_var_with_class(2, classes::VAR_CANON);
                    self.plan.graph.add_factor(&[var], pair_potential(group, sims), class);
                    new_vars.push(var);
                }

                // U1–U3 transitivity: close triangles that gained ≥1 new
                // edge, in sorted (i, j, k) order, against the session
                // budget.
                let tri = &mut self.tri[fam];
                for (&(ti, tj), &v) in new_pairs.iter().zip(&new_vars) {
                    tri.insert(ti, tj, v);
                }
                let mut found: FxHashSet<(u32, u32, u32)> = FxHashSet::default();
                for &(ti, tj) in new_pairs {
                    let (a, b) = (ti.0, tj.0);
                    let (na, nb) = match (tri.adj.get(&a), tri.adj.get(&b)) {
                        (Some(na), Some(nb)) => (na, nb),
                        _ => continue,
                    };
                    let smaller = if na.len() <= nb.len() { na } else { nb };
                    for &c in smaller {
                        // A third vertex that has been retracted must not
                        // close a triangle: its two edges are tombstoned
                        // pair variables, and the reference batch run on
                        // the survivors has no such triangle.
                        if c == a || c == b || !self.live.get(c as usize).copied().unwrap_or(true) {
                            continue;
                        }
                        let e1 = (a.min(c), a.max(c));
                        let e2 = (b.min(c), b.max(c));
                        if tri.edges.contains_key(&e1) && tri.edges.contains_key(&e2) {
                            let mut t3 = [a, b, c];
                            t3.sort_unstable();
                            found.insert((t3[0], t3[1], t3[2]));
                        }
                    }
                }
                let mut found: Vec<(u32, u32, u32)> = found.into_iter().collect();
                found.sort_unstable();
                for (i, j, k) in found {
                    if self.triangle_budget == 0 {
                        self.triangles_skipped = true;
                        break;
                    }
                    let (vij, vjk, vik) =
                        (tri.edges[&(i, j)], tri.edges[&(j, k)], tri.edges[&(i, k)]);
                    self.triangle_budget -= 1;
                    self.plan.graph.add_factor(
                        &[vij, vjk, vik],
                        Potential::Scores { group: groups.beta[beta_idx], scores: tables.clone() },
                        u_class,
                    );
                    self.plan.stats.triangles += 1;
                }

                // U5–U7 consistency for pair variables whose mentions
                // both carry linking variables.
                if with_consistency {
                    let (con_class, con_beta) = match fam {
                        0 => (classes::U5, 4usize),
                        1 => (classes::U6, 5),
                        _ => (classes::U7, 6),
                    };
                    for (&(ti, tj), &pair_var) in new_pairs.iter().zip(&new_vars) {
                        let (ma, mb) = match slot {
                            Some(s) => (
                                NpMention { triple: ti, slot: s }.dense(),
                                NpMention { triple: tj, slot: s }.dense(),
                            ),
                            None => (RpMention(ti).dense(), RpMention(tj).dense()),
                        };
                        let (va, vb) = match slot {
                            Some(_) => (self.plan.np_link_vars[ma], self.plan.np_link_vars[mb]),
                            None => (self.plan.rp_link_vars[ma], self.plan.rp_link_vars[mb]),
                        };
                        let (Some(va), Some(vb)) = (va, vb) else { continue };
                        let table = match slot {
                            Some(_) => equality_table(
                                &self.plan.np_candidates[ma],
                                &self.plan.np_candidates[mb],
                            ),
                            None => equality_table(
                                &self.plan.rp_candidates[ma],
                                &self.plan.rp_candidates[mb],
                            ),
                        };
                        let ka = self.plan.graph.cardinality(va) as usize;
                        let kb = self.plan.graph.cardinality(vb) as usize;
                        let mut high = Vec::with_capacity(ka * kb);
                        for &(a, b, same) in &table {
                            let x = usize::from(same);
                            high.push((a + ka * b + ka * kb * x) as u32);
                        }
                        self.plan.graph.add_factor(
                            &[va, vb, pair_var],
                            Potential::two_level(
                                groups.beta[con_beta],
                                ka * kb * 2,
                                high,
                                0.7,
                                0.3,
                            ),
                            con_class,
                        );
                        self.plan.stats.consistency_factors += 1;
                    }
                }

                // Record the pair variables and restore the batch order
                // (sorted by triple pair), which conflict resolution in
                // `decode` is sensitive to.
                let out = match fam {
                    0 => &mut self.plan.subj_pair_vars,
                    1 => &mut self.plan.pred_pair_vars,
                    _ => &mut self.plan.obj_pair_vars,
                };
                out.extend(new_pairs.iter().zip(&new_vars).map(|(&(a, b), &v)| (a, b, v)));
                out.sort_unstable_by_key(|&(a, b, _)| (a, b));
            }
        }

        // ---------------- U4 fact inclusion ------------------------------
        if with_linking {
            for &t in new_ids {
                let sm = NpMention { triple: t, slot: NpSlot::Subject }.dense();
                let om = NpMention { triple: t, slot: NpSlot::Object }.dense();
                let rm = RpMention(t).dense();
                let (Some(sv), Some(rv), Some(ov)) = (
                    self.plan.np_link_vars[sm],
                    self.plan.rp_link_vars[rm],
                    self.plan.np_link_vars[om],
                ) else {
                    continue;
                };
                let cs = &self.plan.np_candidates[sm];
                let cr = &self.plan.rp_candidates[rm];
                let co = &self.plan.np_candidates[om];
                let (ks, kr, ko) = (cs.len(), cr.len(), co.len());
                let mut high = Vec::new();
                for (oi, &o) in co.iter().enumerate() {
                    for (ri, &r) in cr.iter().enumerate() {
                        for (si, &s) in cs.iter().enumerate() {
                            if self.ckb.has_fact(s, r, o) {
                                high.push((si + ks * ri + ks * kr * oi) as u32);
                            }
                        }
                    }
                }
                self.plan.graph.add_factor(
                    &[sv, rv, ov],
                    Potential::two_level(groups.beta[3], ks * kr * ko, high, 0.9, 0.1),
                    classes::U4,
                );
                self.plan.stats.fact_factors += 1;
            }
        }
    }
}

/// Serialize one committed message arena: a kind word, then the stored
/// representation bit-exactly. Exact arenas XOR-delta pack (near-
/// converged messages compress hard); quantized arenas write packed
/// anchors plus raw f32 residual bits.
fn write_arena(w: &mut SnapWriter, arena: &jocl_fg::MessageArena) {
    match arena {
        jocl_fg::MessageArena::Exact(v) => {
            w.u64(0);
            w.f64_slice_packed(v);
        }
        jocl_fg::MessageArena::Quantized(q) => {
            w.u64(1);
            let (anchors, residuals) = q.state();
            w.f64_slice_packed(anchors);
            w.f32_slice(residuals);
        }
    }
}

/// Deserialize one committed message arena and reject a representation
/// that disagrees with the session's configured [`jocl_fg::MessageStore`]
/// — resuming a quantized snapshot into an exact session (or vice versa)
/// would silently change every later commit's bits.
fn read_arena(r: &mut SnapReader, config: &JoclConfig) -> Result<jocl_fg::MessageArena, KbError> {
    let at = r.offset();
    let kind = r.u64()?;
    let stored = match kind {
        0 => jocl_fg::MessageStore::Exact,
        1 => jocl_fg::MessageStore::Quantized,
        k => {
            return Err(KbError::Snapshot {
                offset: at,
                msg: format!("unknown message-arena kind {k}"),
            })
        }
    };
    if stored != config.message_store {
        return Err(KbError::Snapshot {
            offset: at,
            msg: format!(
                "snapshot committed messages are {stored:?} but the session is configured \
                 for {:?}",
                config.message_store
            ),
        });
    }
    match stored {
        jocl_fg::MessageStore::Exact => Ok(jocl_fg::MessageArena::Exact(r.f64_vec_packed()?)),
        jocl_fg::MessageStore::Quantized => {
            let at = r.offset();
            let anchors = r.f64_vec_packed()?;
            let residuals = r.f32_vec()?;
            let q = jocl_fg::QuantArena::from_state(anchors, residuals)
                .map_err(|msg| KbError::Snapshot { offset: at, msg })?;
            Ok(jocl_fg::MessageArena::Quantized(q))
        }
    }
}
