//! The signal layer: every feature function of the paper, bundled.
//!
//! [`Signals`] owns the trained/built resources and exposes the feature
//! functions used by the factor builder:
//!
//! | method | paper feature | section |
//! |---|---|---|
//! | [`Signals::sim_idf_np`] / [`Signals::sim_idf_rp`] | `f_idf` | §3.1.3 |
//! | [`Signals::sim_emb`] | `f_emb`, `f'_emb` | §3.1.3, §3.2.3 |
//! | [`Signals::sim_ppdb`] | `f_PPDB`, `f'_PPDB` | §3.1.3, §3.2.3 |
//! | [`Signals::sim_amie`] | `f_AMIE` | §3.1.4 |
//! | [`Signals::sim_kbp`] | `f_KBP` | §3.1.4 |
//! | [`Signals::popularity`] | `f_pop` | §3.2.3 |
//! | [`Signals::sim_ngram`] / [`Signals::sim_ld`] | `f_ngram`, `f_LD` | §3.2.4 |

use jocl_embed::vector::cosine01;
use jocl_embed::{train_sgns, EmbeddingStore, SgnsOptions};
use jocl_kb::{Ckb, EntityId, Okb};
use jocl_rules::{AmieOptions, AmieRules, KbpCategorizer, ParaphraseStore};
use jocl_text::sim::{levenshtein_sim, levenshtein_sim_at_least, ngram_jaccard, NgramSet};
use jocl_text::IdfIndex;

/// All signal resources for one dataset.
pub struct Signals {
    /// IDF word statistics over NPs (for `f_idf` on NPs and blocking).
    pub idf_np: IdfIndex,
    /// IDF word statistics over RPs.
    pub idf_rp: IdfIndex,
    /// Trained word embeddings.
    pub embeddings: EmbeddingStore,
    /// Paraphrase database.
    pub ppdb: ParaphraseStore,
    /// Mined AMIE rules.
    pub amie: AmieRules,
    /// KBP-style relation categorizer.
    pub kbp: KbpCategorizer,
}

impl Signals {
    /// `Sim_idf` between two NPs.
    pub fn sim_idf_np(&self, a: &str, b: &str) -> f64 {
        self.idf_np.sim(a, b)
    }

    /// `Sim_idf` between two RPs.
    pub fn sim_idf_rp(&self, a: &str, b: &str) -> f64 {
        self.idf_rp.sim(a, b)
    }

    /// `Sim_emb` between two phrases (cosine of averaged word vectors,
    /// mapped to [0, 1]).
    pub fn sim_emb(&self, a: &str, b: &str) -> f64 {
        self.embeddings.sim(a, b)
    }

    /// `Sim_PPDB`: same paraphrase-cluster representative.
    pub fn sim_ppdb(&self, a: &str, b: &str) -> f64 {
        self.ppdb.sim(a, b)
    }

    /// `Sim_AMIE`: mutual Horn-rule implication.
    pub fn sim_amie(&self, a: &str, b: &str) -> f64 {
        self.amie.sim(a, b)
    }

    /// `Sim_KBP`: same relation category.
    pub fn sim_kbp(&self, a: &str, b: &str) -> f64 {
        self.kbp.sim(a, b)
    }

    /// `f_pop(surface, entity)` from CKB anchor statistics.
    pub fn popularity(&self, ckb: &Ckb, surface: &str, entity: EntityId) -> f64 {
        ckb.popularity(surface, entity)
    }

    /// `f_ngram`: character-trigram Jaccard.
    pub fn sim_ngram(&self, a: &str, b: &str) -> f64 {
        ngram_jaccard(&a.to_lowercase(), &b.to_lowercase())
    }

    /// `f_LD`: normalized Levenshtein similarity.
    pub fn sim_ld(&self, a: &str, b: &str) -> f64 {
        levenshtein_sim(&a.to_lowercase(), &b.to_lowercase())
    }

    /// Precompute the per-phrase artifacts every string-level signal
    /// needs (lowercase form, trigram set, phrase embedding, PPDB
    /// representative). The hot feature loops of the graph builder score
    /// each distinct phrase against many candidates; with a [`PhraseCtx`]
    /// per side, each `sim_*_ctx` call skips the tokenize/lowercase/
    /// average work and produces the **identical** value of its string
    /// counterpart.
    pub fn phrase_ctx(&self, s: &str) -> PhraseCtx {
        let lc = s.to_lowercase();
        let trigrams = NgramSet::trigrams(&lc);
        let emb = self.embeddings.phrase(s);
        let ppdb_rep = self.ppdb.representative(s);
        PhraseCtx { raw: s.to_string(), lc, trigrams, emb, ppdb_rep }
    }

    /// [`Signals::sim_ngram`] over precomputed contexts.
    pub fn sim_ngram_ctx(&self, a: &PhraseCtx, b: &PhraseCtx) -> f64 {
        a.trigrams.jaccard(&b.trigrams)
    }

    /// `max(floor, sim_ld(a, b))` with the length-bound prune of
    /// [`levenshtein_sim_at_least`] — exact drop-in for max-folds.
    pub fn sim_ld_ctx_at_least(&self, a: &PhraseCtx, b: &PhraseCtx, floor: f64) -> f64 {
        levenshtein_sim_at_least(&a.lc, &b.lc, floor)
    }

    /// [`Signals::sim_emb`] over precomputed contexts.
    pub fn sim_emb_ctx(&self, a: &PhraseCtx, b: &PhraseCtx) -> f64 {
        match (&a.emb, &b.emb) {
            (Some(va), Some(vb)) => cosine01(va, vb),
            _ => 0.5,
        }
    }

    /// [`Signals::sim_ppdb`] over precomputed contexts.
    pub fn sim_ppdb_ctx(&self, a: &PhraseCtx, b: &PhraseCtx) -> f64 {
        if a.lc == b.lc {
            return 1.0;
        }
        match (a.ppdb_rep, b.ppdb_rep) {
            (Some(ra), Some(rb)) if ra == rb => 1.0,
            _ => 0.0,
        }
    }
}

/// Precomputed comparison artifacts of one phrase (see
/// [`Signals::phrase_ctx`]).
#[derive(Debug, Clone)]
pub struct PhraseCtx {
    /// The phrase as given.
    pub raw: String,
    lc: String,
    trigrams: NgramSet,
    emb: Option<Vec<f32>>,
    ppdb_rep: Option<u32>,
}

/// Build all signals for a dataset: IDF indexes from the OKB phrases,
/// SGNS embeddings from `corpus`, AMIE rules from the OKB, and the KBP
/// categorizer from the CKB. The PPDB is supplied externally (it is a
/// resource, not derived from the data).
pub fn build_signals(
    okb: &Okb,
    ckb: &Ckb,
    ppdb: &ParaphraseStore,
    corpus: &[Vec<String>],
    sgns: &SgnsOptions,
) -> Signals {
    let mut idf_np = IdfIndex::new();
    let mut idf_rp = IdfIndex::new();
    for (_, t) in okb.triples() {
        idf_np.add_phrase(&t.subject);
        idf_np.add_phrase(&t.object);
        idf_rp.add_phrase(&t.predicate);
    }
    let embeddings = train_sgns(corpus, sgns);
    let amie = jocl_rules::amie::mine(okb, AmieOptions::default());
    let kbp = KbpCategorizer::from_ckb(ckb);
    Signals { idf_np, idf_rp, embeddings, ppdb: ppdb.clone(), amie, kbp }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jocl_kb::Triple;

    fn tiny_signals() -> (Signals, Ckb) {
        let mut okb = Okb::new();
        okb.add_triple(Triple::new("Rome", "is the capital of", "Italy"));
        okb.add_triple(Triple::new("Rome", "is the capital city of", "Italy"));
        okb.add_triple(Triple::new("Paris", "is the capital of", "France"));
        okb.add_triple(Triple::new("Paris", "is the capital city of", "France"));
        let mut ckb = Ckb::new();
        ckb.add_relation(jocl_kb::CkbRelation {
            name: "capital".into(),
            surface_forms: vec!["be the capital of".into()],
            category: "location".into(),
        });
        let ppdb = ParaphraseStore::from_groups([vec!["Rome", "Roma"]]);
        let corpus = vec![
            vec!["rome".into(), "capital".into(), "italy".into()],
            vec!["roma".into(), "capital".into(), "italy".into()],
        ];
        let signals = build_signals(
            &okb,
            &ckb,
            &ppdb,
            &corpus,
            &SgnsOptions { dim: 8, epochs: 2, ..Default::default() },
        );
        (signals, ckb)
    }

    #[test]
    fn all_signals_are_in_range() {
        let (s, _) = tiny_signals();
        let checks = [
            s.sim_idf_np("Rome", "Rome city"),
            s.sim_idf_rp("is the capital of", "is the capital city of"),
            s.sim_emb("rome", "italy"),
            s.sim_ppdb("Rome", "Roma"),
            s.sim_amie("is the capital of", "is the capital city of"),
            s.sim_ngram("capital of", "capital city of"),
            s.sim_ld("capital of", "capital city of"),
        ];
        for (i, v) in checks.iter().enumerate() {
            assert!((0.0..=1.0).contains(v), "signal {i} out of range: {v}");
        }
    }

    #[test]
    fn amie_fires_on_mined_paraphrases() {
        let (s, _) = tiny_signals();
        assert_eq!(s.sim_amie("is the capital of", "is the capital city of"), 1.0);
    }

    #[test]
    fn ppdb_fires_on_groups() {
        let (s, _) = tiny_signals();
        assert_eq!(s.sim_ppdb("Rome", "Roma"), 1.0);
        assert_eq!(s.sim_ppdb("Rome", "Paris"), 0.0);
    }

    #[test]
    fn kbp_categorizes_ckb_surface_forms() {
        let (s, _) = tiny_signals();
        assert_eq!(s.sim_kbp("was the capital of", "is the capital of"), 1.0);
    }

    #[test]
    fn ctx_sims_match_string_sims() {
        let (s, _) = tiny_signals();
        let phrases =
            ["Rome", "Roma", "is the capital of", "is the capital city of", "unknownword", ""];
        let ctxs: Vec<_> = phrases.iter().map(|p| s.phrase_ctx(p)).collect();
        for (a, ca) in phrases.iter().zip(&ctxs) {
            for (b, cb) in phrases.iter().zip(&ctxs) {
                assert_eq!(s.sim_ngram_ctx(ca, cb), s.sim_ngram(a, b), "ngram {a:?} {b:?}");
                assert_eq!(s.sim_emb_ctx(ca, cb), s.sim_emb(a, b), "emb {a:?} {b:?}");
                assert_eq!(s.sim_ppdb_ctx(ca, cb), s.sim_ppdb(a, b), "ppdb {a:?} {b:?}");
                for floor in [0.0, 0.4, 1.0] {
                    assert_eq!(
                        s.sim_ld_ctx_at_least(ca, cb, floor),
                        floor.max(s.sim_ld(a, b)),
                        "ld {a:?} {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn popularity_passthrough() {
        let (s, mut ckb) = tiny_signals();
        let e = ckb.add_entity(jocl_kb::Entity {
            name: "rome".into(),
            aliases: vec!["Rome".into()],
            types: vec![],
        });
        ckb.add_anchor("rome", e, 10);
        assert_eq!(s.popularity(&ckb, "Rome", e), 1.0);
    }
}
