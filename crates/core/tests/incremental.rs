//! The gold correctness property of the streaming subsystem: **N deltas
//! followed by convergence decode identically to a from-scratch batch
//! run on the union** — for the figure-1 worked example, for empty and
//! singleton OKBs, and (proptest) for random datasets replayed as random
//! contiguous arrival batches under any thread count and both schedule
//! modes, sharing one frozen `Signals` per dataset.

use jocl_core::example::figure1;
use jocl_core::pipeline::ValidationLabels;
use jocl_core::signals::build_signals;
use jocl_core::{IncrementalJocl, Jocl, JoclConfig, JoclInput, JoclOutput, ScheduleMode, Signals};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_kb::{Ckb, NpMention, NpSlot, Okb, Triple, TripleId};
use jocl_rules::ParaphraseStore;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Decode equality: links and (canonicalized) cluster assignments.
fn assert_same_decode(incremental: &JoclOutput, batch: &JoclOutput, what: &str) {
    assert_eq!(incremental.np_links, batch.np_links, "{what}: np links diverged");
    assert_eq!(incremental.rp_links, batch.rp_links, "{what}: rp links diverged");
    assert_eq!(
        incremental.np_clustering.assignment(),
        batch.np_clustering.assignment(),
        "{what}: np clustering diverged"
    );
    assert_eq!(
        incremental.rp_clustering.assignment(),
        batch.rp_clustering.assignment(),
        "{what}: rp clustering diverged"
    );
}

#[test]
fn figure1_replayed_one_triple_at_a_time_matches_batch() {
    let ex = figure1();
    for mode in [ScheduleMode::Synchronous, ScheduleMode::Residual] {
        let mut config = ex.config();
        config.lbp.mode = mode;
        let batch = Jocl::new(config.clone()).run(ex.input(), None);

        let signals = build_signals(&ex.okb, &ex.ckb, &ex.ppdb, &ex.corpus, &config.sgns);
        let mut session = IncrementalJocl::new(config, &ex.ckb, &signals);
        let mut last = None;
        for (_, triple) in ex.okb.triples() {
            last = Some(session.apply_delta(std::slice::from_ref(triple)));
        }
        let last = last.expect("three deltas applied");
        assert_same_decode(&last.output, &batch, &format!("figure1 {mode:?}"));
        // The decode carries the figure's joint result, not just *a*
        // consistent one.
        let s1 = NpMention { triple: TripleId(0), slot: NpSlot::Subject }.dense();
        let s2 = NpMention { triple: TripleId(1), slot: NpSlot::Subject }.dense();
        assert_eq!(last.output.np_links[s1], Some(ex.e_umd));
        assert_eq!(last.output.np_links[s2], Some(ex.e_umd));
        assert!(last.output.np_clustering.same(s1, s2));
        assert!(last.stats.warm_started, "deltas after the first must warm-start");
    }
}

/// Satellite regression (OKB dedup): re-delivering a triple through
/// `apply_delta` is a no-op — no second mention variables, no
/// double-counted evidence, identical decode.
#[test]
fn reingested_triples_are_no_ops_through_apply_delta() {
    let ex = figure1();
    let config = ex.config();
    let signals = build_signals(&ex.okb, &ex.ckb, &ex.ppdb, &ex.corpus, &config.sgns);
    let mut session = IncrementalJocl::new(config, &ex.ckb, &signals);
    let triples: Vec<Triple> = ex.okb.triples().map(|(_, t)| t.clone()).collect();
    let first = session.apply_delta(&triples);
    assert_eq!(first.stats.appended, 3);
    let vars_before = first.output.diagnostics.num_vars;
    let factors_before = first.output.diagnostics.num_factors;

    // Re-deliver everything, plus an intra-delta duplicate.
    let mut redelivery = triples.clone();
    redelivery.push(triples[0].clone());
    let second = session.apply_delta(&redelivery);
    assert_eq!(second.stats.appended, 0);
    assert_eq!(second.stats.duplicates, 4);
    assert_eq!(second.stats.new_vars, 0, "duplicates must not create variables");
    assert_eq!(second.stats.new_factors, 0, "duplicates must not add evidence");
    assert_eq!(second.stats.lbp.message_updates, 0, "nothing dirty, nothing to converge");
    assert_eq!(second.output.diagnostics.num_vars, vars_before);
    assert_eq!(second.output.diagnostics.num_factors, factors_before);
    assert_same_decode(&second.output, &first.output, "redelivery");
    assert_eq!(session.len(), 3);
}

/// Satellite (empty/singleton hardening): both the batch pipeline and
/// `apply_delta` must produce well-formed output on an empty OKB…
#[test]
fn empty_okb_is_well_formed_in_batch_and_incremental() {
    let okb = Okb::new();
    let ckb = Ckb::new();
    let ppdb = ParaphraseStore::new();
    let corpus: Vec<Vec<String>> = Vec::new();
    for mode in [ScheduleMode::Synchronous, ScheduleMode::Residual] {
        let mut config = JoclConfig::default();
        config.lbp.mode = mode;
        let input = JoclInput { okb: &okb, ckb: &ckb, ppdb: &ppdb, corpus: &corpus };
        let labels = ValidationLabels::empty(&okb);
        let batch = Jocl::new(config.clone()).run(input, Some(&labels));
        assert!(batch.np_links.is_empty());
        assert!(batch.rp_links.is_empty());
        assert_eq!(batch.np_clustering.len(), 0);
        assert_eq!(batch.np_clustering.num_clusters(), 0);
        assert_eq!(batch.diagnostics.num_vars, 0);
        assert!(batch.diagnostics.lbp.converged, "an empty system is trivially converged");

        let signals = build_signals(&okb, &ckb, &ppdb, &corpus, &config.sgns);
        let mut session = IncrementalJocl::new(config, &ckb, &signals);
        let out = session.apply_delta(&[]);
        assert_eq!(out.stats.appended, 0);
        assert!(out.output.np_links.is_empty());
        assert_eq!(out.output.np_clustering.num_clusters(), 0);
        assert!(out.output.diagnostics.lbp.converged);
        assert_same_decode(&out.output, &batch, &format!("empty {mode:?}"));
    }
}

/// …and on a single-triple OKB (no blocked pairs → a linking-only or
/// even factor-free graph).
#[test]
fn single_triple_okb_is_well_formed_in_batch_and_incremental() {
    let ex = figure1(); // reuse its CKB so linking variables exist
    let mut okb = Okb::new();
    let triple = ex.okb.triple(TripleId(0)).clone();
    okb.add_triple(triple.clone());
    for mode in [ScheduleMode::Synchronous, ScheduleMode::Residual] {
        let mut config = ex.config();
        config.lbp.mode = mode;
        let input = JoclInput { okb: &okb, ckb: &ex.ckb, ppdb: &ex.ppdb, corpus: &ex.corpus };
        let batch = Jocl::new(config.clone()).run(input, None);
        assert_eq!(batch.np_links.len(), 2);
        assert_eq!(batch.rp_links.len(), 1);
        assert_eq!(batch.np_clustering.len(), 2);
        assert!(batch.diagnostics.lbp.converged);
        // Subject and object of one triple never share a cluster.
        assert!(!batch.np_clustering.same(0, 1));

        let signals = build_signals(&okb, &ex.ckb, &ex.ppdb, &ex.corpus, &config.sgns);
        let mut session = IncrementalJocl::new(config, &ex.ckb, &signals);
        let out = session.apply_delta(std::slice::from_ref(&triple));
        assert_eq!(out.stats.appended, 1);
        assert_same_decode(&out.output, &batch, &format!("singleton {mode:?}"));
    }
}

// ---------------------------------------------------------------------
// Proptest: random contiguous partitions of random datasets.
// ---------------------------------------------------------------------

struct ParityWorld {
    okb: Okb,
    ckb: Ckb,
    signals: Signals,
    triples: Vec<Triple>,
    /// Batch decode per schedule mode (thread-invariant by the PR-2/PR-3
    /// guarantees, so one run per mode suffices).
    batch: [JoclOutput; 2],
}

fn parity_config(mode: ScheduleMode) -> JoclConfig {
    let mut config = JoclConfig {
        train_epochs: 0,
        sgns: SgnsOptions { dim: 16, epochs: 2, ..Default::default() },
        ..Default::default()
    };
    config.lbp.mode = mode;
    config
}

/// Three small worlds (different seeds), each with signals built once
/// and the union OKB assembled through the same dedup ingest the
/// session uses.
fn parity_worlds() -> &'static Vec<ParityWorld> {
    static WORLDS: OnceLock<Vec<ParityWorld>> = OnceLock::new();
    WORLDS.get_or_init(|| {
        [3u64, 11, 29]
            .into_iter()
            .map(|seed| {
                let dataset = reverb45k_like(seed, 0.002);
                let triples: Vec<Triple> = dataset.okb.triples().map(|(_, t)| t.clone()).collect();
                let mut okb = Okb::new();
                for t in &triples {
                    okb.ingest_triple(t.clone());
                }
                let signals = build_signals(
                    &okb,
                    &dataset.ckb,
                    &dataset.ppdb,
                    &dataset.corpus,
                    &SgnsOptions { dim: 16, epochs: 2, seed, ..Default::default() },
                );
                let batch = [ScheduleMode::Synchronous, ScheduleMode::Residual].map(|mode| {
                    let input = JoclInput {
                        okb: &okb,
                        ckb: &dataset.ckb,
                        ppdb: &dataset.ppdb,
                        corpus: &dataset.corpus,
                    };
                    Jocl::new(parity_config(mode)).run_with_signals(input, &signals, None)
                });
                ParityWorld { okb, ckb: dataset.ckb.clone(), signals, triples, batch }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any contiguous partition of the arrival sequence, any thread
    /// count, both schedule modes: the final delta's decode equals the
    /// batch decode on the union.
    #[test]
    fn interleaved_deltas_decode_like_batch(
        world_idx in 0usize..3,
        cuts in proptest::collection::vec(0usize..200, 0..4),
        threads in 1usize..3,
        residual_mode in 0usize..2,
    ) {
        let world = &parity_worlds()[world_idx];
        let n = world.triples.len();
        let residual = residual_mode == 1;
        let mode = if residual { ScheduleMode::Residual } else { ScheduleMode::Synchronous };
        let mut config = parity_config(mode);
        config.lbp.threads = threads;

        // Contiguous arrival batches from the random cut points: the
        // union okb (and thus every dense mention index) matches batch.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (n + 1)).collect();
        bounds.push(0);
        bounds.push(n);
        bounds.sort_unstable();
        bounds.dedup();

        let mut session = IncrementalJocl::new(config, &world.ckb, &world.signals);
        let mut last = session.apply_delta(&[]); // empty prefix delta
        let mut appended = 0usize;
        for w in bounds.windows(2) {
            let delta = &world.triples[w[0]..w[1]];
            last = session.apply_delta(delta);
            appended += last.stats.appended;
            prop_assert!(last.output.diagnostics.lbp.converged, "delta LBP must converge");
        }
        prop_assert_eq!(appended, world.okb.len(), "dedup must mirror the union ingest");
        let batch = &world.batch[usize::from(residual)];
        prop_assert_eq!(&last.output.np_links, &batch.np_links, "np links diverged");
        prop_assert_eq!(&last.output.rp_links, &batch.rp_links, "rp links diverged");
        prop_assert_eq!(
            last.output.np_clustering.assignment(),
            batch.np_clustering.assignment(),
            "np clustering diverged"
        );
        prop_assert_eq!(
            last.output.rp_clustering.assignment(),
            batch.rp_clustering.assignment(),
            "rp clustering diverged"
        );
    }
}
