//! The gold correctness property of the streaming subsystem: **N deltas
//! followed by convergence decode identically to a from-scratch batch
//! run on the union** — for the figure-1 worked example, for empty and
//! singleton OKBs, and (proptest) for random datasets replayed as random
//! contiguous arrival batches under any thread count and both schedule
//! modes, sharing one frozen `Signals` per dataset. The retraction
//! extension of the contract — the **live** decode after retract/revise
//! deltas equals a batch run on the survivors — is unit-tested here on
//! figure 1 and property-tested over random op interleavings in the
//! `jocl_serve` crate.

use jocl_core::example::figure1;
use jocl_core::pipeline::ValidationLabels;
use jocl_core::signals::build_signals;
use jocl_core::{
    DeltaOp, IncrementalJocl, Jocl, JoclConfig, JoclInput, JoclOutput, ScheduleMode, Signals,
};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_kb::{Ckb, NpMention, NpSlot, Okb, Triple, TripleId};
use jocl_rules::ParaphraseStore;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Decode equality: links and (canonicalized) cluster assignments.
fn assert_same_decode(incremental: &JoclOutput, batch: &JoclOutput, what: &str) {
    assert_eq!(incremental.np_links, batch.np_links, "{what}: np links diverged");
    assert_eq!(incremental.rp_links, batch.rp_links, "{what}: rp links diverged");
    assert_eq!(
        incremental.np_clustering.assignment(),
        batch.np_clustering.assignment(),
        "{what}: np clustering diverged"
    );
    assert_eq!(
        incremental.rp_clustering.assignment(),
        batch.rp_clustering.assignment(),
        "{what}: rp clustering diverged"
    );
}

#[test]
fn figure1_replayed_one_triple_at_a_time_matches_batch() {
    let ex = figure1();
    for mode in [ScheduleMode::Synchronous, ScheduleMode::Residual] {
        let mut config = ex.config();
        config.lbp.mode = mode;
        let batch = Jocl::new(config.clone()).run(ex.input(), None);

        let signals = build_signals(&ex.okb, &ex.ckb, &ex.ppdb, &ex.corpus, &config.sgns);
        let mut session = IncrementalJocl::new(config, &ex.ckb, &signals);
        let mut last = None;
        for (_, triple) in ex.okb.triples() {
            last = Some(session.apply_delta(std::slice::from_ref(triple)));
        }
        let last = last.expect("three deltas applied");
        assert_same_decode(&last.output, &batch, &format!("figure1 {mode:?}"));
        // The decode carries the figure's joint result, not just *a*
        // consistent one.
        let s1 = NpMention { triple: TripleId(0), slot: NpSlot::Subject }.dense();
        let s2 = NpMention { triple: TripleId(1), slot: NpSlot::Subject }.dense();
        assert_eq!(last.output.np_links[s1], Some(ex.e_umd));
        assert_eq!(last.output.np_links[s2], Some(ex.e_umd));
        assert!(last.output.np_clustering.same(s1, s2));
        assert!(last.stats.warm_started, "deltas after the first must warm-start");
    }
}

/// Satellite regression (OKB dedup): re-delivering a triple through
/// `apply_delta` is a no-op — no second mention variables, no
/// double-counted evidence, identical decode.
#[test]
fn reingested_triples_are_no_ops_through_apply_delta() {
    let ex = figure1();
    let config = ex.config();
    let signals = build_signals(&ex.okb, &ex.ckb, &ex.ppdb, &ex.corpus, &config.sgns);
    let mut session = IncrementalJocl::new(config, &ex.ckb, &signals);
    let triples: Vec<Triple> = ex.okb.triples().map(|(_, t)| t.clone()).collect();
    let first = session.apply_delta(&triples);
    assert_eq!(first.stats.appended, 3);
    let vars_before = first.output.diagnostics.num_vars;
    let factors_before = first.output.diagnostics.num_factors;

    // Re-deliver everything, plus an intra-delta duplicate.
    let mut redelivery = triples.clone();
    redelivery.push(triples[0].clone());
    let second = session.apply_delta(&redelivery);
    assert_eq!(second.stats.appended, 0);
    assert_eq!(second.stats.duplicates, 4);
    assert_eq!(second.stats.new_vars, 0, "duplicates must not create variables");
    assert_eq!(second.stats.new_factors, 0, "duplicates must not add evidence");
    assert_eq!(second.stats.lbp.message_updates, 0, "nothing dirty, nothing to converge");
    assert_eq!(second.output.diagnostics.num_vars, vars_before);
    assert_eq!(second.output.diagnostics.num_factors, factors_before);
    assert_same_decode(&second.output, &first.output, "redelivery");
    assert_eq!(session.len(), 3);
}

/// Satellite (empty/singleton hardening): both the batch pipeline and
/// `apply_delta` must produce well-formed output on an empty OKB…
#[test]
fn empty_okb_is_well_formed_in_batch_and_incremental() {
    let okb = Okb::new();
    let ckb = Ckb::new();
    let ppdb = ParaphraseStore::new();
    let corpus: Vec<Vec<String>> = Vec::new();
    for mode in [ScheduleMode::Synchronous, ScheduleMode::Residual] {
        let mut config = JoclConfig::default();
        config.lbp.mode = mode;
        let input = JoclInput { okb: &okb, ckb: &ckb, ppdb: &ppdb, corpus: &corpus };
        let labels = ValidationLabels::empty(&okb);
        let batch = Jocl::new(config.clone()).run(input, Some(&labels));
        assert!(batch.np_links.is_empty());
        assert!(batch.rp_links.is_empty());
        assert_eq!(batch.np_clustering.len(), 0);
        assert_eq!(batch.np_clustering.num_clusters(), 0);
        assert_eq!(batch.diagnostics.num_vars, 0);
        assert!(batch.diagnostics.lbp.converged, "an empty system is trivially converged");

        let signals = build_signals(&okb, &ckb, &ppdb, &corpus, &config.sgns);
        let mut session = IncrementalJocl::new(config, &ckb, &signals);
        let out = session.apply_delta(&[]);
        assert_eq!(out.stats.appended, 0);
        assert!(out.output.np_links.is_empty());
        assert_eq!(out.output.np_clustering.num_clusters(), 0);
        assert!(out.output.diagnostics.lbp.converged);
        assert_same_decode(&out.output, &batch, &format!("empty {mode:?}"));
    }
}

/// …and on a single-triple OKB (no blocked pairs → a linking-only or
/// even factor-free graph).
#[test]
fn single_triple_okb_is_well_formed_in_batch_and_incremental() {
    let ex = figure1(); // reuse its CKB so linking variables exist
    let mut okb = Okb::new();
    let triple = ex.okb.triple(TripleId(0)).clone();
    okb.add_triple(triple.clone());
    for mode in [ScheduleMode::Synchronous, ScheduleMode::Residual] {
        let mut config = ex.config();
        config.lbp.mode = mode;
        let input = JoclInput { okb: &okb, ckb: &ex.ckb, ppdb: &ex.ppdb, corpus: &ex.corpus };
        let batch = Jocl::new(config.clone()).run(input, None);
        assert_eq!(batch.np_links.len(), 2);
        assert_eq!(batch.rp_links.len(), 1);
        assert_eq!(batch.np_clustering.len(), 2);
        assert!(batch.diagnostics.lbp.converged);
        // Subject and object of one triple never share a cluster.
        assert!(!batch.np_clustering.same(0, 1));

        let signals = build_signals(&okb, &ex.ckb, &ex.ppdb, &ex.corpus, &config.sgns);
        let mut session = IncrementalJocl::new(config, &ex.ckb, &signals);
        let out = session.apply_delta(std::slice::from_ref(&triple));
        assert_eq!(out.stats.appended, 1);
        assert_same_decode(&out.output, &batch, &format!("singleton {mode:?}"));
    }
}

/// Live-slice decode equality against a batch run on the surviving
/// triples: `live` lists the surviving session triple ids in order, so
/// survivor `k` of the batch run corresponds to session triple
/// `live[k]`.
fn assert_live_matches_batch(
    session: &JoclOutput,
    live: &[TripleId],
    batch: &JoclOutput,
    what: &str,
) {
    assert_eq!(batch.rp_links.len(), live.len(), "{what}: survivor count");
    for (bi, &t) in live.iter().enumerate() {
        for slot in 0..2usize {
            assert_eq!(
                session.np_links[t.idx() * 2 + slot],
                batch.np_links[bi * 2 + slot],
                "{what}: np link of survivor {bi} (session triple {t:?}, slot {slot})"
            );
        }
        assert_eq!(
            session.rp_links[t.idx()],
            batch.rp_links[bi],
            "{what}: rp link of survivor {bi}"
        );
    }
    for (bi, &ti) in live.iter().enumerate() {
        for (bj, &tj) in live.iter().enumerate().skip(bi + 1) {
            for (si, sj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                assert_eq!(
                    session.np_clustering.same(ti.idx() * 2 + si, tj.idx() * 2 + sj),
                    batch.np_clustering.same(bi * 2 + si, bj * 2 + sj),
                    "{what}: np co-clustering of survivors {bi}/{bj} slots {si}/{sj}"
                );
            }
            assert_eq!(
                session.rp_clustering.same(ti.idx(), tj.idx()),
                batch.rp_clustering.same(bi, bj),
                "{what}: rp co-clustering of survivors {bi}/{bj}"
            );
        }
    }
}

/// Retracting the middle figure-1 triple must decode, on the live
/// slice, exactly like a batch run on the remaining two — and the dead
/// mentions must drop out of links and merges (both schedule modes).
#[test]
fn figure1_retraction_matches_batch_on_survivors() {
    let ex = figure1();
    let triples: Vec<Triple> = ex.okb.triples().map(|(_, t)| t.clone()).collect();
    let signals = build_signals(&ex.okb, &ex.ckb, &ex.ppdb, &ex.corpus, &ex.config().sgns);
    for mode in [ScheduleMode::Synchronous, ScheduleMode::Residual] {
        let mut config = ex.config();
        config.lbp.mode = mode;

        let mut session = IncrementalJocl::new(config.clone(), &ex.ckb, &signals);
        session.apply_delta(&triples);
        let out = session.apply_ops(&[DeltaOp::Retract(triples[1].clone())]);
        assert_eq!(out.stats.retracted, 1);
        assert!(out.stats.tombstoned_factors > 0, "triple 1 carried factors");
        assert!(out.stats.tombstone_density > 0.0);
        assert_eq!(out.stats.live_triples, 2);
        assert!(out.output.diagnostics.lbp.converged);
        // Dead mentions decode to nothing.
        let s2 = NpMention { triple: TripleId(1), slot: NpSlot::Subject }.dense();
        let o2 = NpMention { triple: TripleId(1), slot: NpSlot::Object }.dense();
        assert_eq!(out.output.np_links[s2], None, "{mode:?}: dead subject must unlink");
        assert_eq!(out.output.np_links[o2], None);
        assert_eq!(out.output.rp_links[1], None);
        assert!(
            !out.output.np_clustering.same(0, s2),
            "{mode:?}: dead mention must not merge with live ones"
        );

        // Reference: batch run on the two survivors with the same frozen
        // signals.
        let mut survivors = Okb::new();
        survivors.ingest_triple(triples[0].clone());
        survivors.ingest_triple(triples[2].clone());
        let input = JoclInput { okb: &survivors, ckb: &ex.ckb, ppdb: &ex.ppdb, corpus: &ex.corpus };
        let batch = Jocl::new(config).run_with_signals(input, &signals, None);
        assert_live_matches_batch(
            &out.output,
            &[TripleId(0), TripleId(2)],
            &batch,
            &format!("figure1 retract {mode:?}"),
        );
    }
}

/// A revision is retract + add under one warm start; re-adding retracted
/// content mints a fresh triple id with fresh variables.
#[test]
fn figure1_revise_and_readd_use_fresh_ids() {
    let ex = figure1();
    let triples: Vec<Triple> = ex.okb.triples().map(|(_, t)| t.clone()).collect();
    let signals = build_signals(&ex.okb, &ex.ckb, &ex.ppdb, &ex.corpus, &ex.config().sgns);
    let mut session = IncrementalJocl::new(ex.config(), &ex.ckb, &signals);
    session.apply_delta(&triples);

    // Revise triple 1 to a UVA membership claim.
    let new = Triple::new("University of Virginia", "be a member of", "Universitas 21");
    let out = session.apply_ops(&[DeltaOp::Revise { old: triples[1].clone(), new: new.clone() }]);
    assert_eq!(out.stats.revised, 1);
    assert_eq!(out.stats.retracted, 1);
    assert_eq!(out.stats.appended, 1);
    assert_eq!(session.len(), 4, "revision appends physically");
    assert_eq!(session.num_live(), 3);

    // Re-adding the retracted content is an append, not a resurrection.
    let out = session.apply_ops(&[DeltaOp::Add(triples[1].clone())]);
    assert_eq!(out.stats.appended, 1);
    assert_eq!(out.stats.duplicates, 0, "retracted content must not count as duplicate");
    assert_eq!(session.num_live(), 4);
    assert_eq!(out.output.rp_links[1], None, "the old id stays dead");
    assert!(out.output.rp_links[4].is_some(), "the fresh id carries the mention now");

    // Retracting something absent is a counted no-op.
    let out = session.apply_ops(&[DeltaOp::Retract(Triple::new("no", "such", "triple"))]);
    assert_eq!(out.stats.missed_retracts, 1);
    assert_eq!(out.stats.retracted, 0);
    assert_eq!(out.stats.lbp.message_updates, 0, "nothing dirty, nothing to converge");
}

/// Compaction rebuilds cold from the survivors: same live decode,
/// smaller graph, zero tombstone density.
#[test]
fn compaction_preserves_live_decode_and_resets_density() {
    let ex = figure1();
    let triples: Vec<Triple> = ex.okb.triples().map(|(_, t)| t.clone()).collect();
    let signals = build_signals(&ex.okb, &ex.ckb, &ex.ppdb, &ex.corpus, &ex.config().sgns);
    let mut session = IncrementalJocl::new(ex.config(), &ex.ckb, &signals);
    session.apply_delta(&triples);
    let before = session.apply_ops(&[DeltaOp::Retract(triples[0].clone())]);
    let vars_before = before.output.diagnostics.num_vars;
    assert!(session.tombstone_density() > 0.0);

    let out = session.compact();
    assert!(out.stats.compacted);
    assert_eq!(session.tombstone_density(), 0.0);
    assert_eq!(session.len(), 2, "compaction renumbers to the survivors");
    assert_eq!(session.num_live(), 2);
    assert!(out.output.diagnostics.num_vars < vars_before, "tombstoned vars reclaimed");
    // Live decode is unchanged: survivors were session triples 1 and 2,
    // now compacted to ids 0 and 1.
    assert_live_matches_batch(
        &before.output,
        &[TripleId(1), TripleId(2)],
        &out.output,
        "compaction",
    );
}

/// Kill-and-restart at the core level: export → import resumes with
/// bitwise-identical messages and identical decode on the next delta.
#[test]
fn export_import_state_roundtrip_is_bitwise_warm() {
    let ex = figure1();
    let triples: Vec<Triple> = ex.okb.triples().map(|(_, t)| t.clone()).collect();
    let signals = build_signals(&ex.okb, &ex.ckb, &ex.ppdb, &ex.corpus, &ex.config().sgns);
    for mode in [ScheduleMode::Synchronous, ScheduleMode::Residual] {
        let mut config = ex.config();
        config.lbp.mode = mode;
        let mut session = IncrementalJocl::new(config.clone(), &ex.ckb, &signals);
        session.apply_delta(&triples[..2]);
        session.apply_ops(&[DeltaOp::Retract(triples[0].clone())]);
        let bytes = session.export_state();

        let mut restored =
            IncrementalJocl::import_state(&bytes, config, &ex.ckb, &signals).unwrap();
        assert_eq!(restored.len(), session.len());
        assert_eq!(restored.num_live(), session.num_live());
        assert_eq!(
            restored.export_state(),
            bytes,
            "{mode:?}: restored state must re-export identically"
        );

        // The next delta behaves identically in both sessions.
        let a = session.apply_delta(&triples[2..]);
        let b = restored.apply_delta(&triples[2..]);
        assert_eq!(a.stats.new_vars, b.stats.new_vars);
        assert_eq!(a.stats.lbp.message_updates, b.stats.lbp.message_updates, "{mode:?}");
        assert_same_decode(&b.output, &a.output, &format!("restored {mode:?}"));
        assert_eq!(
            session.export_state(),
            restored.export_state(),
            "{mode:?}: post-delta states must stay bitwise identical"
        );
    }
}

// ---------------------------------------------------------------------
// Proptest: random contiguous partitions of random datasets.
// ---------------------------------------------------------------------

struct ParityWorld {
    okb: Okb,
    ckb: Ckb,
    signals: Signals,
    triples: Vec<Triple>,
    /// Batch decode per schedule mode (thread-invariant by the PR-2/PR-3
    /// guarantees, so one run per mode suffices).
    batch: [JoclOutput; 2],
}

fn parity_config(mode: ScheduleMode) -> JoclConfig {
    let mut config = JoclConfig {
        train_epochs: 0,
        sgns: SgnsOptions { dim: 16, epochs: 2, ..Default::default() },
        ..Default::default()
    };
    config.lbp.mode = mode;
    config
}

/// Three small worlds (different seeds), each with signals built once
/// and the union OKB assembled through the same dedup ingest the
/// session uses.
fn parity_worlds() -> &'static Vec<ParityWorld> {
    static WORLDS: OnceLock<Vec<ParityWorld>> = OnceLock::new();
    WORLDS.get_or_init(|| {
        [3u64, 11, 29]
            .into_iter()
            .map(|seed| {
                let dataset = reverb45k_like(seed, 0.002);
                let triples: Vec<Triple> = dataset.okb.triples().map(|(_, t)| t.clone()).collect();
                let mut okb = Okb::new();
                for t in &triples {
                    okb.ingest_triple(t.clone());
                }
                let signals = build_signals(
                    &okb,
                    &dataset.ckb,
                    &dataset.ppdb,
                    &dataset.corpus,
                    &SgnsOptions { dim: 16, epochs: 2, seed, ..Default::default() },
                );
                let batch = [ScheduleMode::Synchronous, ScheduleMode::Residual].map(|mode| {
                    let input = JoclInput {
                        okb: &okb,
                        ckb: &dataset.ckb,
                        ppdb: &dataset.ppdb,
                        corpus: &dataset.corpus,
                    };
                    Jocl::new(parity_config(mode)).run_with_signals(input, &signals, None)
                });
                ParityWorld { okb, ckb: dataset.ckb.clone(), signals, triples, batch }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any contiguous partition of the arrival sequence, any thread
    /// count, both schedule modes: the final delta's decode equals the
    /// batch decode on the union.
    #[test]
    fn interleaved_deltas_decode_like_batch(
        world_idx in 0usize..3,
        cuts in proptest::collection::vec(0usize..200, 0..4),
        threads in 1usize..3,
        residual_mode in 0usize..2,
    ) {
        let world = &parity_worlds()[world_idx];
        let n = world.triples.len();
        let residual = residual_mode == 1;
        let mode = if residual { ScheduleMode::Residual } else { ScheduleMode::Synchronous };
        let mut config = parity_config(mode);
        config.lbp.threads = threads;

        // Contiguous arrival batches from the random cut points: the
        // union okb (and thus every dense mention index) matches batch.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (n + 1)).collect();
        bounds.push(0);
        bounds.push(n);
        bounds.sort_unstable();
        bounds.dedup();

        let mut session = IncrementalJocl::new(config, &world.ckb, &world.signals);
        let mut last = session.apply_delta(&[]); // empty prefix delta
        let mut appended = 0usize;
        for w in bounds.windows(2) {
            let delta = &world.triples[w[0]..w[1]];
            last = session.apply_delta(delta);
            appended += last.stats.appended;
            prop_assert!(last.output.diagnostics.lbp.converged, "delta LBP must converge");
        }
        prop_assert_eq!(appended, world.okb.len(), "dedup must mirror the union ingest");
        let batch = &world.batch[usize::from(residual)];
        prop_assert_eq!(&last.output.np_links, &batch.np_links, "np links diverged");
        prop_assert_eq!(&last.output.rp_links, &batch.rp_links, "rp links diverged");
        prop_assert_eq!(
            last.output.np_clustering.assignment(),
            batch.np_clustering.assignment(),
            "np clustering diverged"
        );
        prop_assert_eq!(
            last.output.rp_clustering.assignment(),
            batch.rp_clustering.assignment(),
            "rp clustering diverged"
        );
    }
}
