//! Residual-scheduled LBP through the full pipeline: on the paper's
//! Figure 1(a) worked example, `ScheduleMode::Residual` must decode the
//! same joint result as the synchronous sweeps while performing strictly
//! fewer message updates (the counter the bench-regression gate watches).

use jocl_core::example::figure1;
use jocl_core::{Jocl, JoclConfig, ScheduleMode};

fn run_with_mode(mode: ScheduleMode) -> jocl_core::JoclOutput {
    let ex = figure1();
    let mut config: JoclConfig = ex.config();
    config.lbp.mode = mode;
    Jocl::new(config).run(ex.input(), None)
}

#[test]
fn residual_mode_reproduces_figure1_with_strictly_fewer_updates() {
    let sync = run_with_mode(ScheduleMode::Synchronous);
    let residual = run_with_mode(ScheduleMode::Residual);

    // Identical decode: links and clusters, not just close marginals.
    assert_eq!(residual.np_links, sync.np_links);
    assert_eq!(residual.rp_links, sync.rp_links);
    assert_eq!(residual.np_clustering.num_clusters(), sync.np_clustering.num_clusters());
    assert_eq!(residual.rp_clustering.num_clusters(), sync.rp_clustering.num_clusters());

    // Both converge under the figure1 config…
    assert!(sync.diagnostics.lbp.converged);
    assert!(residual.diagnostics.lbp.converged);

    // …and the residual schedule does strictly less message work.
    let (s, r) = (sync.diagnostics.lbp.message_updates, residual.diagnostics.lbp.message_updates);
    assert!(r > 0, "counter must be wired through the pipeline");
    assert!(r < s, "residual mode must update strictly fewer messages on figure1: {r} vs {s}");
}

#[test]
fn residual_mode_counter_survives_training() {
    // Training runs clamped + free LBP per epoch; the mode (and counter)
    // must flow through `TrainOptions::lbp` unchanged.
    use jocl_core::pipeline::ValidationLabels;
    use jocl_kb::{NpMention, NpSlot, RpMention, TripleId};

    let ex = figure1();
    let mut labels = ValidationLabels::empty(&ex.okb);
    labels.np_entity[NpMention { triple: TripleId(0), slot: NpSlot::Subject }.dense()] =
        Some(ex.e_umd);
    labels.rp_relation[RpMention(TripleId(0)).dense()] = Some(ex.r_location);

    let mut config = ex.config();
    config.train_epochs = 2;
    config.lbp.mode = ScheduleMode::Residual;
    let out = Jocl::new(config).run(ex.input(), Some(&labels));
    assert!(out.diagnostics.train_epochs > 0, "fixture must actually train");
    assert!(out.diagnostics.lbp.message_updates > 0);
}
