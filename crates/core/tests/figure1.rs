//! End-to-end test: JOCL must reproduce the paper's running example
//! (Figure 1a) exactly.

use jocl_core::example::figure1;
use jocl_core::{Jocl, Variant};
use jocl_kb::{NpMention, NpSlot, RpMention, TripleId};

fn np(t: u32, slot: NpSlot) -> usize {
    NpMention { triple: TripleId(t), slot }.dense()
}

#[test]
fn joint_result_matches_figure_1a() {
    let ex = figure1();
    let jocl = Jocl::new(ex.config());
    let out = jocl.run(ex.input(), None);

    let s1 = np(0, NpSlot::Subject);
    let s2 = np(1, NpSlot::Subject);
    let s3 = np(2, NpSlot::Subject);
    let o1 = np(0, NpSlot::Object);
    let o2 = np(1, NpSlot::Object);
    let o3 = np(2, NpSlot::Object);

    // Linking result (blue arrows in Figure 1a).
    assert_eq!(out.np_links[s1], Some(ex.e_umd), "s1 → e4");
    assert_eq!(out.np_links[s2], Some(ex.e_umd), "s2 (UMD) → e4");
    assert_eq!(out.np_links[s3], Some(ex.e_uva), "s3 → e3");
    assert_eq!(out.np_links[o1], Some(ex.e_maryland), "o1 → e1");
    assert_eq!(out.np_links[o2], Some(ex.e_u21), "o2 → e2");
    assert_eq!(out.np_links[o3], Some(ex.e_u21), "o3 (U21) → e2");
    assert_eq!(out.rp_links[RpMention(TripleId(0)).dense()], Some(ex.r_location));
    assert_eq!(out.rp_links[RpMention(TripleId(1)).dense()], Some(ex.r_member));
    assert_eq!(out.rp_links[RpMention(TripleId(2)).dense()], Some(ex.r_member));

    // Canonicalization result (blue ellipses): four NP groups.
    let c = &out.np_clustering;
    assert!(c.same(s1, s2), "s1 and s2 must be grouped");
    assert!(c.same(o2, o3), "o2 and o3 must be grouped");
    assert!(!c.same(s1, s3));
    assert!(!c.same(s1, o1), "the university is not the state");
    assert!(!c.same(o1, o2));
    assert_eq!(c.num_clusters(), 4);

    // Two RP groups.
    let rc = &out.rp_clustering;
    let p1 = RpMention(TripleId(0)).dense();
    let p2 = RpMention(TripleId(1)).dense();
    let p3 = RpMention(TripleId(2)).dense();
    assert!(rc.same(p2, p3), "p2 and p3 must be grouped");
    assert!(!rc.same(p1, p2));
    assert_eq!(rc.num_clusters(), 2);
}

#[test]
fn link_only_variant_cannot_group_without_links() {
    // JOCLlink still produces links; canonicalization comes only from
    // shared link targets.
    let ex = figure1();
    let mut config = ex.config();
    config.variant = Variant::LinkOnly;
    let out = Jocl::new(config).run(ex.input(), None);
    // No transitivity structure is built without pair variables.
    assert_eq!(out.diagnostics.triangles, 0);
    // s2 should still link correctly through popularity + fact inclusion.
    assert_eq!(out.np_links[np(1, NpSlot::Subject)], Some(ex.e_umd));
}

#[test]
fn cano_only_variant_produces_no_links() {
    let ex = figure1();
    let mut config = ex.config();
    config.variant = Variant::CanoOnly;
    config.merge_by_link = false;
    let out = Jocl::new(config).run(ex.input(), None);
    assert!(out.np_links.iter().all(Option::is_none));
    assert!(out.rp_links.iter().all(Option::is_none));
    // The RP paraphrase pair is still found lexically.
    let p2 = RpMention(TripleId(1)).dense();
    let p3 = RpMention(TripleId(2)).dense();
    assert!(out.rp_clustering.same(p2, p3));
}
