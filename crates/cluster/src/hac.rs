//! Hierarchical agglomerative clustering (HAC) over a sparse similarity
//! graph.
//!
//! The canonicalization baselines of the paper (§4.2.1) "utilize
//! hierarchical agglomerative clustering (HAC)" over a pairwise phrase
//! similarity, merging until the best available merge falls below a
//! threshold. At OKB scale the full similarity matrix is never
//! materialized — similarities come from a blocked candidate pair list, and
//! absent pairs are treated as similarity `0`.
//!
//! Supported linkage criteria:
//! * [`Linkage::Single`] — cluster similarity is the max over item pairs.
//!   With a threshold this is exactly connected components of the
//!   `sim ≥ τ` graph, computed directly with union-find.
//! * [`Linkage::Complete`] — min over item pairs (absent pairs ⇒ 0, so only
//!   cliques merge).
//! * [`Linkage::Average`] — mean over all `|A|·|B|` item pairs, with absent
//!   pairs contributing 0.

use crate::{Clustering, UnionFind};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Linkage criterion for [`hac_threshold`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Max pairwise similarity between clusters.
    Single,
    /// Min pairwise similarity (absent pairs count as 0).
    Complete,
    /// Mean pairwise similarity over all cross pairs (absent pairs are 0).
    Average,
}

/// Cross-cluster statistics sufficient to evaluate any linkage lazily.
#[derive(Debug, Clone, Copy, Default)]
struct CrossStat {
    sum: f64,
    min: f64,
    max: f64,
    edges: u64,
}

impl CrossStat {
    fn from_edge(sim: f64) -> Self {
        Self { sum: sim, min: sim, max: sim, edges: 1 }
    }

    fn merge(self, other: CrossStat) -> Self {
        Self {
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            edges: self.edges + other.edges,
        }
    }

    fn linkage(&self, kind: Linkage, size_a: u64, size_b: u64) -> f64 {
        let total_pairs = size_a * size_b;
        match kind {
            Linkage::Single => self.max,
            Linkage::Complete => {
                if self.edges < total_pairs {
                    0.0
                } else {
                    self.min
                }
            }
            Linkage::Average => self.sum / total_pairs as f64,
        }
    }
}

/// A candidate merge on the heap; ordered by similarity (max-heap).
struct Merge {
    sim: f64,
    a: u32,
    b: u32,
}

impl PartialEq for Merge {
    fn eq(&self, other: &Self) -> bool {
        self.sim == other.sim && self.a == other.a && self.b == other.b
    }
}
impl Eq for Merge {}
impl PartialOrd for Merge {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Merge {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sim
            .partial_cmp(&other.sim)
            .unwrap_or(Ordering::Equal)
            // Deterministic tie-break on ids.
            .then_with(|| (other.a, other.b).cmp(&(self.a, self.b)))
    }
}

/// Agglomerate `n` items using the sparse similarity `edges`
/// (`(i, j, sim)`, undirected, `sim ∈ [0, 1]`), merging greedily while the
/// best linkage is `≥ threshold`.
///
/// Non-finite or non-positive similarities and self-loops are ignored.
/// Duplicate edges keep the maximum similarity.
pub fn hac_threshold(
    n: usize,
    edges: &[(usize, usize, f64)],
    linkage: Linkage,
    threshold: f64,
) -> Clustering {
    if linkage == Linkage::Single {
        // Exact shortcut: connected components of the thresholded graph.
        let mut uf = UnionFind::new(n);
        for &(i, j, s) in edges {
            if i != j && s.is_finite() && s >= threshold {
                uf.union(i, j);
            }
        }
        return uf.into_clustering();
    }

    // cluster id -> (size, neighbor map). Item clusters are ids 0..n; merged
    // clusters reuse the surviving id.
    let mut size: Vec<u64> = vec![1; n];
    let mut alive: Vec<bool> = vec![true; n];
    let mut nbrs: Vec<HashMap<u32, CrossStat>> = vec![HashMap::new(); n];
    for &(i, j, s) in edges {
        if i == j || !s.is_finite() || s <= 0.0 {
            continue;
        }
        let (i, j) = (i as u32, j as u32);
        let stat = CrossStat::from_edge(s);
        upsert_max(&mut nbrs[i as usize], j, stat);
        upsert_max(&mut nbrs[j as usize], i, stat);
    }

    let mut heap: BinaryHeap<Merge> = BinaryHeap::new();
    for (i, map) in nbrs.iter().enumerate() {
        for (&j, stat) in map {
            if (i as u32) < j {
                let sim = stat.linkage(linkage, 1, 1);
                if sim >= threshold {
                    heap.push(Merge { sim, a: i as u32, b: j });
                }
            }
        }
    }

    let mut uf = UnionFind::new(n);
    while let Some(Merge { sim, a, b }) = heap.pop() {
        let (a, b) = (a as usize, b as usize);
        if !alive[a] || !alive[b] {
            continue;
        }
        // Validate against the current linkage (lazy deletion).
        let current = match nbrs[a].get(&(b as u32)) {
            Some(stat) => stat.linkage(linkage, size[a], size[b]),
            None => continue,
        };
        if (current - sim).abs() > 1e-12 {
            continue; // stale entry; the fresh one is elsewhere in the heap
        }
        if current < threshold {
            continue;
        }

        // Merge b into a (keep the bigger neighbor map in a).
        if nbrs[b].len() > nbrs[a].len() {
            nbrs.swap(a, b);
            // Sizes/neighbor ids still refer to a and b correctly below
            // because we merge maps symmetrically; swap sizes too.
            size.swap(a, b);
        }
        uf.union(a, b);
        alive[b] = false;
        let b_map = std::mem::take(&mut nbrs[b]);
        nbrs[a].remove(&(b as u32));
        for (c, stat_bc) in b_map {
            let c = c as usize;
            if c == a || !alive[c] {
                if !alive[c] {
                    nbrs[c].remove(&(b as u32));
                }
                continue;
            }
            nbrs[c].remove(&(b as u32));
            let merged = match nbrs[a].get(&(c as u32)) {
                Some(&stat_ac) => stat_ac.merge(stat_bc),
                None => stat_bc,
            };
            nbrs[a].insert(c as u32, merged);
            nbrs[c].insert(a as u32, merged);
        }
        size[a] += size[b];
        // Re-enqueue all of a's neighbors with fresh linkage values.
        let sa = size[a];
        for (&c, stat) in &nbrs[a] {
            let c_us = c as usize;
            if !alive[c_us] {
                continue;
            }
            let l = stat.linkage(linkage, sa, size[c_us]);
            if l >= threshold {
                heap.push(Merge { sim: l, a: a as u32, b: c });
            }
        }
    }
    uf.into_clustering()
}

fn upsert_max(map: &mut HashMap<u32, CrossStat>, key: u32, stat: CrossStat) {
    map.entry(key)
        .and_modify(|s| {
            // Duplicate raw edge: keep the stronger similarity.
            if stat.max > s.max {
                *s = stat;
            }
        })
        .or_insert(stat);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(i: usize, j: usize, s: f64) -> (usize, usize, f64) {
        (i, j, s)
    }

    #[test]
    fn single_linkage_is_connected_components() {
        let edges = vec![edge(0, 1, 0.9), edge(1, 2, 0.6), edge(3, 4, 0.8)];
        let c = hac_threshold(5, &edges, Linkage::Single, 0.7);
        assert!(c.same(0, 1));
        assert!(!c.same(1, 2)); // 0.6 below threshold
        assert!(c.same(3, 4));
        assert_eq!(c.num_clusters(), 3);
    }

    #[test]
    fn single_linkage_chains() {
        let edges = vec![edge(0, 1, 0.9), edge(1, 2, 0.9)];
        let c = hac_threshold(3, &edges, Linkage::Single, 0.5);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn complete_linkage_requires_cliques() {
        // Chain 0-1-2 without the 0-2 edge: complete linkage merges 0,1
        // (or 1,2) but cannot absorb the third item.
        let edges = vec![edge(0, 1, 0.9), edge(1, 2, 0.9)];
        let c = hac_threshold(3, &edges, Linkage::Complete, 0.5);
        assert_eq!(c.num_clusters(), 2);
    }

    #[test]
    fn complete_linkage_merges_cliques() {
        let edges = vec![edge(0, 1, 0.9), edge(1, 2, 0.8), edge(0, 2, 0.85)];
        let c = hac_threshold(3, &edges, Linkage::Complete, 0.5);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn average_linkage_dilutes_missing_edges() {
        // Triangle with one weak corner: average of {0.9, 0.9, 0.0} = 0.6.
        let edges = vec![edge(0, 1, 0.9), edge(1, 2, 0.9)];
        let high = hac_threshold(3, &edges, Linkage::Average, 0.7);
        // First merge (0,1) at 0.9; then cluster{0,1} vs {2}: (0 + 0.9)/2 =
        // 0.45 < 0.7 → stays out.
        assert_eq!(high.num_clusters(), 2);
        let low = hac_threshold(3, &edges, Linkage::Average, 0.4);
        assert_eq!(low.num_clusters(), 1);
    }

    #[test]
    fn threshold_one_keeps_only_perfect_pairs() {
        let edges = vec![edge(0, 1, 1.0), edge(2, 3, 0.99)];
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let c = hac_threshold(4, &edges, linkage, 1.0);
            assert!(c.same(0, 1), "{linkage:?}");
            assert!(!c.same(2, 3), "{linkage:?}");
        }
    }

    #[test]
    fn no_edges_yields_singletons() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let c = hac_threshold(4, &[], linkage, 0.1);
            assert_eq!(c.num_clusters(), 4);
        }
    }

    #[test]
    fn self_loops_and_nan_are_ignored() {
        let edges = vec![edge(0, 0, 1.0), edge(0, 1, f64::NAN), edge(1, 2, 0.9)];
        let c = hac_threshold(3, &edges, Linkage::Average, 0.5);
        assert!(!c.same(0, 1));
        assert!(c.same(1, 2));
    }

    #[test]
    fn duplicate_edges_take_max() {
        let edges = vec![edge(0, 1, 0.2), edge(0, 1, 0.9)];
        let c = hac_threshold(2, &edges, Linkage::Complete, 0.5);
        assert!(c.same(0, 1));
    }

    #[test]
    fn larger_average_case() {
        // Two dense blobs {0..4} and {5..9} with strong internal edges and
        // one weak cross edge.
        let mut edges = Vec::new();
        for i in 0..5usize {
            for j in (i + 1)..5 {
                edges.push(edge(i, j, 0.95));
                edges.push(edge(i + 5, j + 5, 0.95));
            }
        }
        edges.push(edge(4, 5, 0.3));
        let c = hac_threshold(10, &edges, Linkage::Average, 0.6);
        assert_eq!(c.num_clusters(), 2);
        assert!(c.same(0, 4));
        assert!(c.same(5, 9));
        assert!(!c.same(0, 9));
    }
}
