#![forbid(unsafe_code)]
//! # jocl-cluster
//!
//! Clustering substrate for the JOCL reproduction.
//!
//! Two families of consumers:
//!
//! * the **baselines** of the paper (Text Similarity, IDF Token Overlap,
//!   Attribute Overlap, CESI, SIST) all cluster with **hierarchical
//!   agglomerative clustering** ([`hac`]) over a pairwise similarity;
//! * **JOCL's decoder** turns positive pairwise canonicalization marginals
//!   into groups via **union-find connected components** ([`UnionFind`]),
//!   per paper §3.5.
//!
//! [`Clustering`] is the common output type consumed by `jocl-eval`.

pub mod hac;
pub mod unionfind;

pub use hac::{hac_threshold, Linkage};
pub use unionfind::UnionFind;

/// A flat clustering of `n` items: `assignment[i]` is the cluster id of
/// item `i`. Cluster ids are dense (`0..num_clusters`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    assignment: Vec<u32>,
    num_clusters: u32,
}

impl Clustering {
    /// Build from an arbitrary (possibly sparse) label vector, re-mapping
    /// labels to dense ids in first-appearance order.
    pub fn from_labels(labels: &[u32]) -> Self {
        let mut remap = std::collections::HashMap::new();
        let mut assignment = Vec::with_capacity(labels.len());
        for &l in labels {
            let next = remap.len() as u32;
            let id = *remap.entry(l).or_insert(next);
            assignment.push(id);
        }
        Self { assignment, num_clusters: remap.len() as u32 }
    }

    /// Everything-is-a-singleton clustering of `n` items.
    pub fn singletons(n: usize) -> Self {
        Self { assignment: (0..n as u32).collect(), num_clusters: n as u32 }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True when there are no items.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters as usize
    }

    /// Cluster id of item `i`.
    pub fn cluster_of(&self, i: usize) -> u32 {
        self.assignment[i]
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Are items `i` and `j` in the same cluster?
    pub fn same(&self, i: usize, j: usize) -> bool {
        self.assignment[i] == self.assignment[j]
    }

    /// Materialize clusters as item-index lists, ordered by cluster id.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.num_clusters as usize];
        for (i, &c) in self.assignment.iter().enumerate() {
            groups[c as usize].push(i);
        }
        groups
    }

    /// Build a clustering of `n` items from an edge list: items connected
    /// (transitively) by an edge share a cluster.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut uf = UnionFind::new(n);
        for (a, b) in edges {
            uf.union(a, b);
        }
        uf.into_clustering()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_labels_densifies() {
        let c = Clustering::from_labels(&[7, 7, 2, 9, 2]);
        assert_eq!(c.num_clusters(), 3);
        assert!(c.same(0, 1));
        assert!(c.same(2, 4));
        assert!(!c.same(0, 2));
    }

    #[test]
    fn singletons() {
        let c = Clustering::singletons(4);
        assert_eq!(c.num_clusters(), 4);
        assert!(!c.same(0, 1));
    }

    #[test]
    fn groups_partition_items() {
        let c = Clustering::from_labels(&[0, 1, 0, 2, 1]);
        let groups = c.groups();
        assert_eq!(groups.len(), 3);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        assert_eq!(groups[0], vec![0, 2]);
    }

    #[test]
    fn from_edges_components() {
        let c = Clustering::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        assert_eq!(c.num_clusters(), 2);
        assert!(c.same(0, 2));
        assert!(c.same(3, 4));
        assert!(!c.same(2, 3));
    }

    #[test]
    fn empty_clustering() {
        let c = Clustering::from_labels(&[]);
        assert!(c.is_empty());
        assert_eq!(c.num_clusters(), 0);
        assert!(c.groups().is_empty());
    }
}
