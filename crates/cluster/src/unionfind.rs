//! Disjoint-set forest (union-find) with path halving and union by size.
//!
//! JOCL's decoder (paper §3.5) forms canonicalization groups as connected
//! components of the "same meaning" pairs, then merges groups during
//! conflict resolution — both are union-find workloads.

use crate::Clustering;

/// Disjoint-set forest over items `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n], components: n }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Append singleton sets until the structure covers `n` items.
    /// Existing sets and representatives are untouched — the incremental
    /// decoder grows its component tracker this way as the factor graph
    /// gains variables. No-op when `n <= len()`.
    pub fn grow(&mut self, n: usize) {
        while self.parent.len() < n {
            let id = self.parent.len() as u32;
            self.parent.push(id);
            self.size.push(1);
            self.components += 1;
        }
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merge the sets of `a` and `b`. Returns `true` if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// The raw forest state for persistence: `(parent, size, component
    /// count)`. The parent array is exported as-is (including whatever
    /// path-halving has already flattened), so a restored forest answers
    /// every `find`/`union` exactly as the original would — which is
    /// what lets a restored serving session reproduce its component
    /// bookkeeping bit-for-bit.
    pub fn export_state(&self) -> (&[u32], &[u32], usize) {
        (&self.parent, &self.size, self.components)
    }

    /// Rebuild a forest from [`UnionFind::export_state`] parts,
    /// validating the structural invariants (equal lengths, parents in
    /// range, component count = number of roots) so corrupt snapshot
    /// data fails here instead of corrupting later unions.
    pub fn import_state(
        parent: Vec<u32>,
        size: Vec<u32>,
        components: usize,
    ) -> Result<UnionFind, String> {
        if parent.len() != size.len() {
            return Err(format!("parent/size length mismatch: {} vs {}", parent.len(), size.len()));
        }
        let n = parent.len();
        if let Some(&bad) = parent.iter().find(|&&p| p as usize >= n) {
            return Err(format!("parent {bad} out of range for {n} items"));
        }
        let roots = parent.iter().enumerate().filter(|&(i, &p)| p as usize == i).count();
        if roots != components {
            return Err(format!("component count {components} disagrees with {roots} roots"));
        }
        Ok(UnionFind { parent, size, components })
    }

    /// Flatten into a dense [`Clustering`].
    pub fn into_clustering(mut self) -> Clustering {
        let n = self.len();
        let labels: Vec<u32> = (0..n).map(|i| self.find(i) as u32).collect();
        Clustering::from_labels(&labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sets_are_disjoint() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.num_components(), 3);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_connects_transitively() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.num_components(), 2);
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(2);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert_eq!(uf.num_components(), 1);
    }

    #[test]
    fn component_sizes() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.component_size(2), 3);
        assert_eq!(uf.component_size(3), 1);
    }

    #[test]
    fn into_clustering_matches_components() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 5);
        uf.union(2, 3);
        let c = uf.into_clustering();
        assert_eq!(c.num_clusters(), 4);
        assert!(c.same(0, 5));
        assert!(c.same(2, 3));
        assert!(!c.same(0, 2));
    }

    #[test]
    fn grow_appends_singletons_preserving_sets() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        uf.grow(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.num_components(), 4); // {0,1} {2} {3} {4}
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(3, 4));
        uf.union(1, 4);
        assert!(uf.connected(0, 4));
        uf.grow(2); // shrinking request is a no-op
        assert_eq!(uf.len(), 5);
    }

    /// Restart parity: an exported-and-reimported forest answers find /
    /// union / component queries exactly like the original.
    #[test]
    fn export_import_state_roundtrip() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(5, 6);
        uf.find(2); // trigger path halving so restored state includes it
        let (parent, size, components) = uf.export_state();
        let mut restored =
            UnionFind::import_state(parent.to_vec(), size.to_vec(), components).unwrap();
        assert_eq!(restored.num_components(), uf.num_components());
        for i in 0..8 {
            assert_eq!(restored.find(i), uf.find(i), "item {i}");
            assert_eq!(restored.component_size(i), uf.component_size(i));
        }
        uf.union(2, 5);
        restored.union(2, 5);
        assert_eq!(restored.num_components(), uf.num_components());
        assert_eq!(restored.find(6), uf.find(6));
    }

    #[test]
    fn import_state_rejects_corrupt_forests() {
        // Parent out of range.
        assert!(UnionFind::import_state(vec![0, 9], vec![2, 1], 1)
            .unwrap_err()
            .contains("out of range"));
        // Length mismatch.
        assert!(UnionFind::import_state(vec![0], vec![1, 1], 1).unwrap_err().contains("mismatch"));
        // Wrong component count.
        assert!(UnionFind::import_state(vec![0, 1], vec![1, 1], 1).unwrap_err().contains("roots"));
    }

    #[test]
    fn large_chain_flattens() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert!(uf.connected(0, n - 1));
    }
}
