//! Property tests for union-find and HAC invariants.

use jocl_cluster::{hac_threshold, Clustering, Linkage, UnionFind};
use proptest::prelude::*;

fn edges(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((0..n, 0..n, 0.0f64..=1.0), 0..40)
}

proptest! {
    #[test]
    fn unionfind_component_count_invariant(ops in proptest::collection::vec((0usize..20, 0usize..20), 0..60)) {
        let mut uf = UnionFind::new(20);
        let mut merges = 0;
        for (a, b) in ops {
            if uf.union(a, b) {
                merges += 1;
            }
        }
        prop_assert_eq!(uf.num_components(), 20 - merges);
    }

    #[test]
    fn unionfind_connected_is_equivalence(ops in proptest::collection::vec((0usize..12, 0usize..12), 0..40)) {
        let mut uf = UnionFind::new(12);
        for (a, b) in &ops {
            uf.union(*a, *b);
        }
        // Reflexive, symmetric, transitive via representative equality.
        for i in 0..12 {
            prop_assert!(uf.connected(i, i));
        }
        for i in 0..12 {
            for j in 0..12 {
                prop_assert_eq!(uf.connected(i, j), uf.connected(j, i));
            }
        }
        let c = uf.clone().into_clustering();
        for i in 0..12 {
            for j in 0..12 {
                prop_assert_eq!(c.same(i, j), uf.connected(i, j));
            }
        }
    }

    #[test]
    fn hac_single_refines_with_threshold(es in edges(15), t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
        // A higher threshold can only split clusters, never merge them.
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let coarse = hac_threshold(15, &es, Linkage::Single, lo);
        let fine = hac_threshold(15, &es, Linkage::Single, hi);
        for i in 0..15 {
            for j in 0..15 {
                if fine.same(i, j) {
                    prop_assert!(coarse.same(i, j), "fine merged ({i},{j}) but coarse did not");
                }
            }
        }
    }

    #[test]
    fn hac_all_linkages_produce_valid_partitions(es in edges(12), t in 0.05f64..1.0) {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let c = hac_threshold(12, &es, linkage, t);
            prop_assert_eq!(c.len(), 12);
            // Every cluster id below num_clusters, and all ids used.
            let mut seen = vec![false; c.num_clusters()];
            for i in 0..12 {
                seen[c.cluster_of(i) as usize] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn hac_complete_is_refinement_of_single(es in edges(12), t in 0.05f64..1.0) {
        // Complete linkage can never merge two items that single linkage
        // keeps apart (complete ≤ single similarity).
        let single = hac_threshold(12, &es, Linkage::Single, t);
        let complete = hac_threshold(12, &es, Linkage::Complete, t);
        for i in 0..12 {
            for j in 0..12 {
                if complete.same(i, j) {
                    prop_assert!(single.same(i, j));
                }
            }
        }
    }

    #[test]
    fn clustering_from_edges_matches_unionfind(es in proptest::collection::vec((0usize..10, 0usize..10), 0..30)) {
        let c = Clustering::from_edges(10, es.iter().copied());
        let mut uf = UnionFind::new(10);
        for &(a, b) in &es {
            uf.union(a, b);
        }
        for i in 0..10 {
            for j in 0..10 {
                prop_assert_eq!(c.same(i, j), uf.connected(i, j));
            }
        }
    }
}
