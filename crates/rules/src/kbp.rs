//! Stanford-KBP-style relation categorization.
//!
//! Paper §3.1.4:
//!
//! > "Stanford Knowledge Base Population (KBP) system can link a RP to a
//! > relation in a CKB. If the relations of two RPs fall in the same
//! > category, these two RPs are considered as equivalent."
//!
//! The original is a pattern-based slot-filling system; this substrate
//! keeps the same interface: patterns (normalized token sets derived from
//! the CKB's relation surface forms) vote for a relation **category**, and
//! `Sim_KBP(p_i, p_j) = 1` iff both RPs are categorized into the same
//! category.

use jocl_kb::Ckb;
use jocl_text::fx::FxHashSet;
use jocl_text::normalize::morph_normalize_rp;
use jocl_text::tokenize::tokenize_normed;

/// One pattern: a normalized token set plus the category it indicates.
#[derive(Debug, Clone)]
struct Pattern {
    tokens: FxHashSet<String>,
    category: String,
}

/// Pattern-based relation-phrase categorizer.
#[derive(Debug, Clone, Default)]
pub struct KbpCategorizer {
    patterns: Vec<Pattern>,
    /// Minimum token-Jaccard between an RP and a pattern to accept.
    threshold: f64,
}

impl KbpCategorizer {
    /// Build from a CKB: every relation surface form becomes a pattern for
    /// the relation's category.
    pub fn from_ckb(ckb: &Ckb) -> Self {
        let mut me = Self { patterns: Vec::new(), threshold: 0.5 };
        for (_, rel) in ckb.relations() {
            for sf in &rel.surface_forms {
                me.add_pattern(sf, &rel.category);
            }
        }
        me
    }

    /// Add one surface-form pattern mapping to `category`.
    pub fn add_pattern(&mut self, surface_form: &str, category: &str) {
        let normed = morph_normalize_rp(surface_form);
        let tokens: FxHashSet<String> = tokenize_normed(&normed).map(str::to_string).collect();
        if tokens.is_empty() {
            return;
        }
        self.patterns.push(Pattern { tokens, category: category.to_string() });
    }

    /// Override the acceptance threshold (default 0.5).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Categorize an RP: the category of the best-matching pattern, if its
    /// token Jaccard reaches the threshold.
    pub fn categorize(&self, rp: &str) -> Option<&str> {
        let normed = morph_normalize_rp(rp);
        let tokens: FxHashSet<String> = tokenize_normed(&normed).map(str::to_string).collect();
        if tokens.is_empty() {
            return None;
        }
        let mut best: Option<(f64, &str)> = None;
        for p in &self.patterns {
            let inter = p.tokens.intersection(&tokens).count();
            if inter == 0 {
                continue;
            }
            let union = p.tokens.len() + tokens.len() - inter;
            let j = inter as f64 / union as f64;
            let better = match best {
                None => true,
                Some((bj, bc)) => j > bj || (j == bj && p.category.as_str() < bc),
            };
            if better {
                best = Some((j, &p.category));
            }
        }
        best.and_then(|(j, c)| (j >= self.threshold).then_some(c))
    }

    /// `Sim_KBP`: 1.0 iff both RPs are categorized and agree.
    pub fn sim(&self, rp_a: &str, rp_b: &str) -> f64 {
        match (self.categorize(rp_a), self.categorize(rp_b)) {
            (Some(a), Some(b)) if a == b => 1.0,
            _ => 0.0,
        }
    }

    /// Number of patterns.
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jocl_kb::CkbRelation;

    fn categorizer() -> KbpCategorizer {
        let mut c = KbpCategorizer::default().with_threshold(0.5);
        c.add_pattern("work at", "employment");
        c.add_pattern("work for", "employment");
        c.add_pattern("be employed by", "employment");
        c.add_pattern("be located in", "location");
        c.add_pattern("be the capital of", "location");
        c
    }

    #[test]
    fn paper_example_working_at() {
        // §3.1.4: Sim_KBP("was working at", "worked for") = 1.
        let c = categorizer();
        assert_eq!(c.sim("was working at", "worked for"), 1.0);
    }

    #[test]
    fn cross_category_is_zero() {
        let c = categorizer();
        assert_eq!(c.sim("was working at", "is located in"), 0.0);
    }

    #[test]
    fn uncategorizable_is_zero() {
        let c = categorizer();
        assert!(c.categorize("completely unrelated phrase").is_none());
        assert_eq!(c.sim("zzz", "was working at"), 0.0);
    }

    #[test]
    fn from_ckb_builds_patterns() {
        let mut ckb = Ckb::new();
        ckb.add_relation(CkbRelation {
            name: "people.employment".into(),
            surface_forms: vec!["work at".into(), "work for".into()],
            category: "employment".into(),
        });
        let c = KbpCategorizer::from_ckb(&ckb);
        assert_eq!(c.num_patterns(), 2);
        assert_eq!(c.categorize("worked at"), Some("employment"));
    }

    #[test]
    fn threshold_controls_acceptance() {
        let mut strict = KbpCategorizer::default().with_threshold(1.0);
        strict.add_pattern("be the capital of", "location");
        // Partial overlap is rejected at threshold 1.0 …
        assert!(strict.categorize("be the capital city of").is_none());
        // … but accepted at 0.5.
        let lax = categorizer();
        assert_eq!(lax.categorize("be the capital city of"), Some("location"));
    }

    #[test]
    fn empty_rp_is_uncategorizable() {
        let c = categorizer();
        assert!(c.categorize("").is_none());
    }

    #[test]
    fn deterministic_tie_break() {
        let mut c = KbpCategorizer::default().with_threshold(0.1);
        c.add_pattern("lead", "b-cat");
        c.add_pattern("lead", "a-cat");
        // Equal Jaccard: lexicographically smaller category wins.
        assert_eq!(c.categorize("leads"), Some("a-cat"));
    }
}
