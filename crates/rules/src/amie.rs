//! AMIE-style Horn-rule mining between relation phrases.
//!
//! Paper §3.1.4:
//!
//! > "We take morphological normalized OIE triples as the input of AMIE,
//! > and the output of AMIE is a set of implication rules between two RPs
//! > p_i and p_j (e.g., p_i ⇒ p_j) based on statistical rule mining. If
//! > both p_i ⇒ p_j and p_j ⇒ p_i satisfy support and confidence
//! > thresholds, we consider two RPs have the same semantic meaning."
//!
//! For the two-atom rules used here, a rule `p_i(x, y) ⇒ p_j(x, y)` has
//!
//! * **support** = |{(x,y) : p_i(x,y) ∧ p_j(x,y)}| — how many NP pairs
//!   witness the implication;
//! * **confidence** = support / |{(x,y) : p_i(x,y)}| — the PCA-free
//!   standard confidence over the premise's instantiations.
//!
//! NP arguments are compared by morphological normal form, so "Rome" and
//! "rome" (or "the Romans" / "roman") instantiate the same variable.

use jocl_kb::Okb;
use jocl_text::fx::FxHashMap;
use jocl_text::normalize::{morph_normalize, morph_normalize_rp};

/// Thresholds for rule acceptance.
#[derive(Debug, Clone, Copy)]
pub struct AmieOptions {
    /// Minimum number of shared NP-pair instantiations.
    pub min_support: usize,
    /// Minimum confidence in *each* direction.
    pub min_confidence: f64,
}

impl Default for AmieOptions {
    fn default() -> Self {
        Self { min_support: 2, min_confidence: 0.5 }
    }
}

/// One mined implication rule (premise ⇒ conclusion over normalized RPs).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Normalized premise RP.
    pub premise: String,
    /// Normalized conclusion RP.
    pub conclusion: String,
    /// Shared instantiation count.
    pub support: usize,
    /// support / |premise instantiations|.
    pub confidence: f64,
}

/// The mined rule set with an equivalence view for `Sim_AMIE`.
#[derive(Debug, Clone, Default)]
pub struct AmieRules {
    rules: Vec<Rule>,
    /// Normalized RP pairs (a ≤ b lexicographically) that are mutually
    /// implied above thresholds.
    equivalent: std::collections::HashSet<(String, String)>,
}

impl AmieRules {
    /// All mined directed rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of equivalent (undirected) RP pairs.
    pub fn num_equivalences(&self) -> usize {
        self.equivalent.len()
    }

    /// `Sim_AMIE` over raw RP strings: 1.0 iff their normal forms are
    /// mutually implied (or identical).
    pub fn sim(&self, rp_a: &str, rp_b: &str) -> f64 {
        let a = morph_normalize_rp(rp_a);
        let b = morph_normalize_rp(rp_b);
        if a == b {
            return 1.0;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if self.equivalent.contains(&key) {
            1.0
        } else {
            0.0
        }
    }
}

/// Mine rules over an OKB (paper: "morphological normalized OIE triples").
pub fn mine(okb: &Okb, opts: AmieOptions) -> AmieRules {
    // Normalized RP -> set of normalized (subject, object) instantiations.
    let mut instantiations: FxHashMap<String, Vec<(String, String)>> = FxHashMap::default();
    for (_, t) in okb.triples() {
        let rp = morph_normalize_rp(&t.predicate);
        let pair = (morph_normalize(&t.subject), morph_normalize(&t.object));
        instantiations.entry(rp).or_default().push(pair);
    }
    // Deduplicate instantiations per RP (facts repeated in the OKB should
    // not inflate support).
    let mut rp_pairs: Vec<(String, std::collections::HashSet<(String, String)>)> =
        instantiations.into_iter().map(|(rp, pairs)| (rp, pairs.into_iter().collect())).collect();
    rp_pairs.sort_by(|a, b| a.0.cmp(&b.0));

    // Inverted index: NP pair -> RP indexes, to avoid the quadratic scan.
    let mut by_pair: FxHashMap<&(String, String), Vec<usize>> = FxHashMap::default();
    for (i, (_, pairs)) in rp_pairs.iter().enumerate() {
        for pair in pairs {
            by_pair.entry(pair).or_default().push(i);
        }
    }
    // Co-occurrence counts between RPs sharing at least one NP pair.
    let mut joint: FxHashMap<(usize, usize), usize> = FxHashMap::default();
    for rps in by_pair.values() {
        for (ai, &a) in rps.iter().enumerate() {
            for &b in &rps[ai + 1..] {
                *joint.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
    }

    let mut out = AmieRules::default();
    for ((a, b), support) in joint {
        if support < opts.min_support {
            continue;
        }
        let conf_ab = support as f64 / rp_pairs[a].1.len() as f64;
        let conf_ba = support as f64 / rp_pairs[b].1.len() as f64;
        if conf_ab >= opts.min_confidence {
            out.rules.push(Rule {
                premise: rp_pairs[a].0.clone(),
                conclusion: rp_pairs[b].0.clone(),
                support,
                confidence: conf_ab,
            });
        }
        if conf_ba >= opts.min_confidence {
            out.rules.push(Rule {
                premise: rp_pairs[b].0.clone(),
                conclusion: rp_pairs[a].0.clone(),
                support,
                confidence: conf_ba,
            });
        }
        if conf_ab >= opts.min_confidence && conf_ba >= opts.min_confidence {
            let (x, y) = (rp_pairs[a].0.clone(), rp_pairs[b].0.clone());
            let key = if x <= y { (x, y) } else { (y, x) };
            out.equivalent.insert(key);
        }
    }
    out.rules.sort_by(|r, s| (&r.premise, &r.conclusion).cmp(&(&s.premise, &s.conclusion)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jocl_kb::Triple;

    /// Build an OKB where two RPs share most NP pairs.
    fn paraphrase_okb() -> Okb {
        let mut okb = Okb::new();
        let pairs =
            [("rome", "italy"), ("paris", "france"), ("berlin", "germany"), ("madrid", "spain")];
        for (s, o) in pairs {
            okb.add_triple(Triple::new(s, "is the capital of", o));
            okb.add_triple(Triple::new(s, "is the capital city of", o));
        }
        // A third RP with disjoint instantiations.
        okb.add_triple(Triple::new("london", "is bigger than", "oxford"));
        okb
    }

    #[test]
    fn mutual_implication_detected() {
        let okb = paraphrase_okb();
        let rules = mine(&okb, AmieOptions::default());
        // The paper's example: Sim_AMIE("is the capital of",
        // "is the capital city of") = 1.
        assert_eq!(rules.sim("is the capital of", "is the capital city of"), 1.0);
        assert_eq!(rules.sim("is the capital of", "is bigger than"), 0.0);
    }

    #[test]
    fn identical_normal_forms_are_equivalent_without_rules() {
        let rules = AmieRules::default();
        assert_eq!(rules.sim("was a member of", "is a member of"), 1.0);
    }

    #[test]
    fn support_threshold_filters() {
        let mut okb = Okb::new();
        okb.add_triple(Triple::new("a", "p", "b"));
        okb.add_triple(Triple::new("a", "q", "b"));
        // Only one shared pair: below min_support = 2.
        let rules = mine(&okb, AmieOptions::default());
        assert_eq!(rules.sim("p", "q"), 0.0);
        // Lowering the threshold accepts it.
        let rules = mine(&okb, AmieOptions { min_support: 1, ..Default::default() });
        assert_eq!(rules.sim("p", "q"), 1.0);
    }

    #[test]
    fn confidence_is_directional() {
        let mut okb = Okb::new();
        // q holds for many pairs; p only for two of them. p ⇒ q has
        // confidence 1.0, q ⇒ p has confidence 2/6 < 0.5.
        for i in 0..6 {
            okb.add_triple(Triple::new(&format!("s{i}"), "q", &format!("o{i}")));
        }
        okb.add_triple(Triple::new("s0", "p", "o0"));
        okb.add_triple(Triple::new("s1", "p", "o1"));
        let rules = mine(&okb, AmieOptions::default());
        // Not mutually implied → not equivalent.
        assert_eq!(rules.sim("p", "q"), 0.0);
        // But the directed rule p ⇒ q exists with confidence 1.
        let rule = rules
            .rules()
            .iter()
            .find(|r| r.premise == "p" && r.conclusion == "q")
            .expect("directed rule should be mined");
        assert!((rule.confidence - 1.0).abs() < 1e-12);
        assert_eq!(rule.support, 2);
        assert!(!rules.rules().iter().any(|r| r.premise == "q" && r.conclusion == "p"));
    }

    #[test]
    fn duplicate_triples_do_not_inflate_support() {
        let mut okb = Okb::new();
        for _ in 0..5 {
            okb.add_triple(Triple::new("a", "p", "b"));
            okb.add_triple(Triple::new("a", "q", "b"));
        }
        let rules = mine(&okb, AmieOptions::default());
        // Still just one distinct instantiation.
        assert_eq!(rules.sim("p", "q"), 0.0);
    }

    #[test]
    fn argument_normalization_merges_variants() {
        let mut okb = Okb::new();
        okb.add_triple(Triple::new("Rome", "is the capital of", "Italy"));
        okb.add_triple(Triple::new("rome", "is capital of", "italy"));
        okb.add_triple(Triple::new("Paris", "is the capital of", "France"));
        okb.add_triple(Triple::new("the Paris", "is capital of", "france"));
        let rules = mine(&okb, AmieOptions::default());
        assert_eq!(rules.sim("is the capital of", "is capital of"), 1.0);
    }

    #[test]
    fn empty_okb_mines_nothing() {
        let rules = mine(&Okb::new(), AmieOptions::default());
        assert!(rules.rules().is_empty());
        assert_eq!(rules.num_equivalences(), 0);
    }
}
