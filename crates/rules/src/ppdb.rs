//! PPDB-style paraphrase store.
//!
//! Paper §3.1.3:
//!
//! > "PPDB 2.0 is a large collection of paraphrases in English. All the
//! > equivalent phrases are clustered into a group and each group is
//! > randomly assigned a representative. If two NPs have the same cluster
//! > representative according to the index, they are considered to be
//! > equivalent."
//!
//! Phrases are keyed by lowercase form. The same structure also backs the
//! PATTY-style relation synsets used by the RP canonicalization baseline.

use jocl_text::fx::FxHashMap;

/// A paraphrase database: phrase → cluster representative.
#[derive(Debug, Clone, Default)]
pub struct ParaphraseStore {
    representative: FxHashMap<String, u32>,
    num_groups: u32,
}

impl ParaphraseStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from equivalence groups. Later groups do not override earlier
    /// memberships (first assignment wins, mirroring a static resource).
    pub fn from_groups<I, G, S>(groups: I) -> Self
    where
        I: IntoIterator<Item = G>,
        G: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut store = Self::new();
        for group in groups {
            store.add_group(group);
        }
        store
    }

    /// Add one equivalence group; returns its id.
    pub fn add_group<G, S>(&mut self, phrases: G) -> u32
    where
        G: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let id = self.num_groups;
        let mut inserted = false;
        for p in phrases {
            let key = p.as_ref().to_lowercase();
            if let std::collections::hash_map::Entry::Vacant(e) = self.representative.entry(key) {
                e.insert(id);
                inserted = true;
            }
        }
        if inserted {
            self.num_groups += 1;
        }
        id
    }

    /// The representative (group id) of a phrase, if known.
    pub fn representative(&self, phrase: &str) -> Option<u32> {
        self.representative.get(&phrase.to_lowercase()).copied()
    }

    /// `Sim_PPDB(a, b)`: 1.0 iff both phrases are known and share a
    /// representative (identical strings are trivially equivalent).
    pub fn sim(&self, a: &str, b: &str) -> f64 {
        let (la, lb) = (a.to_lowercase(), b.to_lowercase());
        if la == lb {
            return 1.0;
        }
        match (self.representative.get(&la), self.representative.get(&lb)) {
            (Some(ra), Some(rb)) if ra == rb => 1.0,
            _ => 0.0,
        }
    }

    /// Number of indexed phrases.
    pub fn num_phrases(&self) -> usize {
        self.representative.len()
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParaphraseStore {
        ParaphraseStore::from_groups([
            vec!["Barack Obama", "President Obama", "Obama"],
            vec!["United States", "USA", "US"],
        ])
    }

    #[test]
    fn same_group_is_one() {
        let s = store();
        assert_eq!(s.sim("Barack Obama", "President Obama"), 1.0);
        assert_eq!(s.sim("USA", "United States"), 1.0);
    }

    #[test]
    fn cross_group_is_zero() {
        let s = store();
        assert_eq!(s.sim("Obama", "USA"), 0.0);
    }

    #[test]
    fn unknown_phrases_are_zero_unless_identical() {
        let s = store();
        assert_eq!(s.sim("unknown phrase", "другое"), 0.0);
        assert_eq!(s.sim("unknown phrase", "unknown phrase"), 1.0);
    }

    #[test]
    fn case_insensitive() {
        let s = store();
        assert_eq!(s.sim("barack obama", "PRESIDENT OBAMA"), 1.0);
    }

    #[test]
    fn first_assignment_wins() {
        let mut s = ParaphraseStore::new();
        s.add_group(["a", "b"]);
        s.add_group(["b", "c"]);
        // "b" stays in the first group, so a~b but b!~c.
        assert_eq!(s.sim("a", "b"), 1.0);
        assert_eq!(s.sim("b", "c"), 0.0);
    }

    #[test]
    fn counts() {
        let s = store();
        assert_eq!(s.num_groups(), 2);
        assert_eq!(s.num_phrases(), 6);
    }

    #[test]
    fn empty_group_does_not_bump_group_count() {
        let mut s = ParaphraseStore::new();
        let empty: [&str; 0] = [];
        s.add_group(empty);
        assert_eq!(s.num_groups(), 0);
    }
}
