#![forbid(unsafe_code)]
//! # jocl-rules
//!
//! Rule-mining and lexical-resource substrates for the JOCL reproduction.
//! The paper's RP canonicalization signals (§3.1.4) come from three
//! external systems, all reimplemented here:
//!
//! * [`amie`] — the AMIE association-rule miner (Galárraga et al., WWW
//!   2013): mines mutual implication rules `p_i ⇒ p_j` between relation
//!   phrases over morphologically normalized OIE triples, with support and
//!   confidence thresholds; `Sim_AMIE(p_i, p_j) = 1` iff both directions
//!   hold.
//! * [`ppdb`] — a PPDB-2.0-style paraphrase store: equivalence groups with
//!   a per-group representative; `Sim_PPDB(a, b) = 1` iff the phrases map
//!   to the same representative (§3.1.3).
//! * [`kbp`] — a Stanford-KBP-style relation categorizer: maps a relation
//!   phrase to a CKB relation category via normalized-pattern matching;
//!   `Sim_KBP(p_i, p_j) = 1` iff both fall in the same category (§3.1.4).

pub mod amie;
pub mod kbp;
pub mod ppdb;

pub use amie::{AmieOptions, AmieRules, Rule};
pub use kbp::KbpCategorizer;
pub use ppdb::ParaphraseStore;
