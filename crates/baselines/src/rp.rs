//! RP canonicalization baselines (paper §4.2.2, Table 2).

use jocl_cluster::{Clustering, UnionFind};
use jocl_kb::Okb;
use jocl_rules::{AmieOptions, AmieRules, ParaphraseStore};
use jocl_text::fx::FxHashMap;
use jocl_text::normalize::{morph_normalize, morph_normalize_rp};

/// **AMIE** (Galárraga et al. 2013): RPs connected by mutual implication
/// rules merge; everything else stays singleton (modulo shared normal
/// form). This mirrors the paper's observation that "AMIE only covers
/// very few RPs" because most fall under the support threshold.
pub fn amie_baseline(okb: &Okb, opts: AmieOptions) -> Clustering {
    let rules = jocl_rules::amie::mine(okb, opts);
    cluster_rp_by(okb, |a, b| rules.sim(a, b) == 1.0)
}

/// AMIE clustering from pre-mined rules.
pub fn amie_from_rules(okb: &Okb, rules: &AmieRules) -> Clustering {
    cluster_rp_by(okb, |a, b| rules.sim(a, b) == 1.0)
}

/// **PATTY** (Nakashole et al. 2012): merge RPs that (a) belong to the
/// same synset or (b) connect the same normalized NP pair in multiple
/// triples.
pub fn patty(okb: &Okb, synsets: &ParaphraseStore) -> Clustering {
    // (a) synset equivalence over normal forms and raw forms.
    let mut clustering = cluster_rp_by(okb, |a, b| {
        synsets.sim(a, b) == 1.0 || synsets.sim(&base_form(a), &base_form(b)) == 1.0
    });
    // (b) same NP-pair support: triples with identical (subject, object)
    // normal forms merge their RPs.
    let mut by_pair: FxHashMap<(String, String), Vec<usize>> = FxHashMap::default();
    for (t, tr) in okb.triples() {
        by_pair
            .entry((morph_normalize(&tr.subject), morph_normalize(&tr.object)))
            .or_default()
            .push(t.idx());
    }
    let mut uf = UnionFind::new(okb.num_rp_mentions());
    for i in 0..okb.num_rp_mentions() {
        for j in (i + 1)..okb.num_rp_mentions() {
            if clustering.same(i, j) {
                uf.union(i, j);
            }
        }
    }
    for triples in by_pair.values() {
        for w in triples.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
    clustering = uf.into_clustering();
    clustering
}

/// **SIST** for RPs (Lin & Chen 2019): morphological normalization plus
/// synset/paraphrase side information from the source text.
pub fn sist_rp(okb: &Okb, synsets: &ParaphraseStore, ppdb: &ParaphraseStore) -> Clustering {
    cluster_rp_by(okb, |a, b| {
        let (na, nb) = (morph_normalize_rp(a), morph_normalize_rp(b));
        na == nb
            || synsets.sim(&base_form(a), &base_form(b)) == 1.0
            || ppdb.sim(&base_form(a), &base_form(b)) == 1.0
    })
}

/// The "base form" used to look up relation surface forms in resources:
/// normalized, then re-expanded to the resource convention `be a X of` is
/// approximated by the normal form itself.
fn base_form(rp: &str) -> String {
    morph_normalize_rp(rp)
}

/// Cluster RP mentions: mentions with the same normal form always merge;
/// additionally `same(a, b)` merges distinct normal forms. Works on
/// distinct phrases to stay subquadratic in mentions.
fn cluster_rp_by(okb: &Okb, mut same: impl FnMut(&str, &str) -> bool) -> Clustering {
    // Distinct raw phrases.
    let mut distinct: Vec<String> = Vec::new();
    let mut phrase_of_mention: Vec<usize> = Vec::with_capacity(okb.num_rp_mentions());
    {
        let mut index: FxHashMap<String, usize> = FxHashMap::default();
        for m in okb.rp_mentions() {
            let p = okb.rp_phrase(m).to_lowercase();
            let next = distinct.len();
            let id = *index.entry(p.clone()).or_insert_with(|| {
                distinct.push(p.clone());
                next
            });
            phrase_of_mention.push(id);
        }
    }
    // Union distinct phrases by predicate.
    let mut uf = UnionFind::new(distinct.len());
    for i in 0..distinct.len() {
        for j in (i + 1)..distinct.len() {
            if uf.connected(i, j) {
                continue;
            }
            if same(&distinct[i], &distinct[j]) {
                uf.union(i, j);
            }
        }
    }
    let labels: Vec<u32> = phrase_of_mention.iter().map(|&p| uf.find(p) as u32).collect();
    Clustering::from_labels(&labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jocl_kb::Triple;
    use jocl_rules::AmieOptions;

    fn okb() -> Okb {
        let mut okb = Okb::new();
        // Two RPs sharing several NP pairs (AMIE-minable) plus morphology
        // variants.
        for (s, o) in [("rome", "italy"), ("paris", "france"), ("berlin", "germany")] {
            okb.add_triple(Triple::new(s, "is the capital of", o));
            okb.add_triple(Triple::new(s, "is the capital city of", o));
        }
        okb.add_triple(Triple::new("london", "is bigger than", "oxford"));
        okb.add_triple(Triple::new("madrid", "was the capital of", "spain"));
        okb
    }

    #[test]
    fn amie_merges_mutual_implications() {
        let c = amie_baseline(&okb(), AmieOptions::default());
        // Triples 0 and 1 use the two paraphrases.
        assert!(c.same(0, 1));
        // "is bigger than" stays alone.
        assert!(!c.same(0, 6));
    }

    #[test]
    fn amie_morphology_variants_merge_via_normal_form() {
        let c = amie_baseline(&okb(), AmieOptions::default());
        // "was the capital of" normalizes to the same form as
        // "is the capital of".
        assert!(c.same(0, 7));
    }

    #[test]
    fn patty_uses_np_pair_support() {
        let okb = okb();
        let empty = ParaphraseStore::new();
        let c = patty(&okb, &empty);
        // Triples 0 and 1 share the NP pair (rome, italy) → merged even
        // without synsets.
        assert!(c.same(0, 1));
        // The singleton RP remains alone.
        assert!(!c.same(0, 6));
    }

    #[test]
    fn patty_uses_synsets() {
        let mut okb = Okb::new();
        okb.add_triple(Triple::new("a", "be the head of", "b"));
        okb.add_triple(Triple::new("c", "be the leader of", "d"));
        let synsets = ParaphraseStore::from_groups([vec![
            morph_normalize_rp("be the head of"),
            morph_normalize_rp("be the leader of"),
        ]]);
        let c = patty(&okb, &synsets);
        assert!(c.same(0, 1));
    }

    #[test]
    fn sist_rp_combines_normalization_and_resources() {
        let okb = okb();
        let empty = ParaphraseStore::new();
        let c = sist_rp(&okb, &empty, &empty);
        // Normal-form merge works without any resource.
        assert!(c.same(0, 7));
        // Distinct forms without resources stay apart.
        assert!(!c.same(0, 1));
        // With PPDB knowledge they merge.
        let ppdb = ParaphraseStore::from_groups([vec![
            morph_normalize_rp("is the capital of"),
            morph_normalize_rp("is the capital city of"),
        ]]);
        let c = sist_rp(&okb, &empty, &ppdb);
        assert!(c.same(0, 1));
    }

    #[test]
    fn identical_predicates_always_merge() {
        let mut okb = Okb::new();
        okb.add_triple(Triple::new("a", "works at", "b"));
        okb.add_triple(Triple::new("c", "works at", "d"));
        let c = amie_baseline(&okb, AmieOptions::default());
        assert!(c.same(0, 1));
    }
}
