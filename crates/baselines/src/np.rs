//! NP canonicalization baselines (paper §4.2.1, Table 1).
//!
//! The classical baselines (Galárraga et al., CESI, SIST) cluster
//! **distinct noun phrases** and then project the result onto mentions;
//! identical surface forms are a single node. Candidate phrase pairs come
//! from a shared-token index (the same blocking idea the paper applies to
//! JOCL), and clustering is HAC with average linkage.
//!
//! All functions return a [`Clustering`] over the dense NP mention index
//! (2 mentions per triple).

use jocl_cluster::{hac_threshold, Clustering, Linkage, UnionFind};
use jocl_core::signals::Signals;
use jocl_embed::{retrofit, EmbeddingStore, RetrofitOptions};
use jocl_kb::{Ckb, NpMention, NpSlot, Okb};
use jocl_text::fx::{FxHashMap, FxHashSet};
use jocl_text::morph_normalize;
use jocl_text::sim::{jaccard_slices, jaro_winkler};
use jocl_text::tokenize;

/// Distinct lowercase NP phrases plus the phrase id of every mention.
pub struct PhraseIndex {
    /// Distinct phrases, sorted.
    pub phrases: Vec<String>,
    /// Phrase id per dense mention index.
    pub of_mention: Vec<usize>,
}

/// Build the phrase index of an OKB.
pub fn phrase_index(okb: &Okb) -> PhraseIndex {
    let mut ids: FxHashMap<String, usize> = FxHashMap::default();
    let mut phrases: Vec<String> = Vec::new();
    let of_mention: Vec<usize> = okb
        .np_mentions()
        .map(|m| {
            let p = okb.np_phrase(m).to_lowercase();
            *ids.entry(p.clone()).or_insert_with(|| {
                phrases.push(p);
                phrases.len() - 1
            })
        })
        .collect();
    PhraseIndex { phrases, of_mention }
}

/// Candidate phrase pairs sharing at least one non-hub token.
pub fn phrase_pair_candidates(phrases: &[String]) -> Vec<(usize, usize)> {
    const MAX_TOKEN_DF: usize = 150;
    let mut token_index: FxHashMap<String, Vec<u32>> = FxHashMap::default();
    for (pi, p) in phrases.iter().enumerate() {
        let mut toks = tokenize(p);
        toks.sort_unstable();
        toks.dedup();
        for t in toks {
            token_index.entry(t).or_default().push(pi as u32);
        }
    }
    let mut pairs: FxHashSet<(u32, u32)> = FxHashSet::default();
    for list in token_index.values() {
        if list.len() > MAX_TOKEN_DF {
            continue;
        }
        for (i, &a) in list.iter().enumerate() {
            for &b in &list[i + 1..] {
                pairs.insert((a.min(b), a.max(b)));
            }
        }
    }
    let mut out: Vec<(usize, usize)> =
        pairs.into_iter().map(|(a, b)| (a as usize, b as usize)).collect();
    out.sort_unstable();
    out
}

/// HAC over phrase nodes, projected back to mentions.
fn hac_phrases(index: &PhraseIndex, edges: &[(usize, usize, f64)], threshold: f64) -> Clustering {
    let phrase_clusters = hac_threshold(index.phrases.len(), edges, Linkage::Average, threshold);
    let labels: Vec<u32> =
        index.of_mention.iter().map(|&p| phrase_clusters.cluster_of(p)).collect();
    Clustering::from_labels(&labels)
}

fn weighted_edges(
    index: &PhraseIndex,
    mut sim: impl FnMut(&str, &str) -> f64,
) -> Vec<(usize, usize, f64)> {
    phrase_pair_candidates(&index.phrases)
        .into_iter()
        .map(|(a, b)| {
            let s = sim(&index.phrases[a], &index.phrases[b]);
            (a, b, s)
        })
        .collect()
}

/// **Morph Norm** (Fader et al. 2011): group mentions sharing one
/// morphological normal form.
pub fn morph_norm(okb: &Okb) -> Clustering {
    let mut groups: FxHashMap<String, u32> = FxHashMap::default();
    let mut labels = Vec::with_capacity(okb.num_np_mentions());
    for m in okb.np_mentions() {
        let norm = morph_normalize(okb.np_phrase(m));
        let next = groups.len() as u32;
        labels.push(*groups.entry(norm).or_insert(next));
    }
    Clustering::from_labels(&labels)
}

/// **Text Similarity** (Galárraga et al. 2014): Jaro-Winkler + HAC.
pub fn text_similarity(okb: &Okb, _signals: &Signals, threshold: f64) -> Clustering {
    let index = phrase_index(okb);
    let edges = weighted_edges(&index, jaro_winkler);
    hac_phrases(&index, &edges, threshold)
}

/// **IDF Token Overlap** (Galárraga et al. 2014): `Sim_idf` + HAC.
pub fn idf_token_overlap(okb: &Okb, signals: &Signals, threshold: f64) -> Clustering {
    let index = phrase_index(okb);
    let edges = weighted_edges(&index, |a, b| signals.sim_idf_np(a, b));
    hac_phrases(&index, &edges, threshold)
}

/// **Attribute Overlap** (Galárraga et al. 2014): Jaccard over the
/// phrases' `(RP, other-NP)` attribute sets + HAC.
pub fn attribute_overlap(okb: &Okb, _signals: &Signals, threshold: f64) -> Clustering {
    let index = phrase_index(okb);
    let mut attrs: FxHashMap<&str, Vec<String>> = FxHashMap::default();
    for m in okb.np_mentions() {
        let p = &index.phrases[index.of_mention[m.dense()]];
        attrs.entry(p.as_str()).or_default().push(okb.np_attribute(m).to_lowercase());
    }
    let edges = weighted_edges(&index, |a, b| jaccard_slices(&attrs[a], &attrs[b]));
    hac_phrases(&index, &edges, threshold)
}

/// **Wikidata Integrator**: link every mention independently (an
/// entity-linking tool), then group mentions linked to the same entity.
pub fn wikidata_integrator(okb: &Okb, ckb: &Ckb) -> (Clustering, Vec<Option<jocl_kb::EntityId>>) {
    // The real tool resolves by exact label/alias lookup; mentions whose
    // surface form is not an exact alias (typos, determiners) stay
    // unlinked — that is its characteristic weakness.
    let mut cache: FxHashMap<String, Option<jocl_kb::EntityId>> = FxHashMap::default();
    let links: Vec<Option<jocl_kb::EntityId>> = okb
        .np_mentions()
        .map(|m| {
            let phrase = okb.np_phrase(m);
            *cache.entry(phrase.to_lowercase()).or_insert_with(|| {
                ckb.entities_by_alias(phrase).iter().copied().max_by(|a, b| {
                    ckb.popularity(phrase, *a)
                        .partial_cmp(&ckb.popularity(phrase, *b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| b.cmp(a))
                })
            })
        })
        .collect();
    let mut uf = UnionFind::new(okb.num_np_mentions());
    let mut first: FxHashMap<u32, usize> = FxHashMap::default();
    // Unlinked mentions still group by identical phrase.
    let mut first_phrase: FxHashMap<String, usize> = FxHashMap::default();
    for (m, link) in links.iter().enumerate() {
        match link {
            Some(e) => match first.entry(e.0) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    uf.union(*o.get(), m);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(m);
                }
            },
            None => {
                let p = okb.np_phrase(NpMention::from_dense(m)).to_lowercase();
                match first_phrase.entry(p) {
                    std::collections::hash_map::Entry::Occupied(o) => {
                        uf.union(*o.get(), m);
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(m);
                    }
                }
            }
        }
    }
    (uf.into_clustering(), links)
}

/// **CESI** (Vashishth et al. 2018): phrase embeddings refined with side
/// information (PPDB equivalences and shared entity-candidate hints,
/// injected by retrofitting), HAC over cosine.
pub fn cesi(okb: &Okb, ckb: &Ckb, signals: &Signals, threshold: f64) -> Clustering {
    let index = phrase_index(okb);
    let dim = signals.embeddings.dim();
    let mut store = EmbeddingStore::new(dim);
    for p in &index.phrases {
        match signals.embeddings.phrase(p) {
            Some(v) => store.insert(p, &v),
            None => {
                let hashed = EmbeddingStore::hashed(dim, &[p.as_str()], 17);
                store.insert(p, hashed.get(p).expect("hashed store contains p"));
            }
        }
    }
    // Side-information edges. Entity hints come from exact alias lookup
    // (CESI's original side information used crude surface matching, not
    // a full entity linker).
    let mut best_entity: FxHashMap<usize, u32> = FxHashMap::default();
    for (pi, p) in index.phrases.iter().enumerate() {
        let best = ckb.entities_by_alias(p).iter().copied().max_by(|a, b| {
            ckb.popularity(p, *a)
                .partial_cmp(&ckb.popularity(p, *b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.cmp(a))
        });
        if let Some(e) = best {
            best_entity.insert(pi, e.0);
        }
    }
    let mut by_entity: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
    for (&pi, &e) in &best_entity {
        by_entity.entry(e).or_default().push(pi);
    }
    let mut side_edges: Vec<(String, String)> = Vec::new();
    let mut extra_pairs: Vec<(usize, usize)> = Vec::new();
    for group in by_entity.values_mut() {
        group.sort_unstable();
        for w in group.windows(2) {
            side_edges.push((index.phrases[w[0]].clone(), index.phrases[w[1]].clone()));
            extra_pairs.push((w[0], w[1]));
        }
    }
    // PPDB edges among token-sharing candidates plus entity-hint pairs.
    let mut candidates = phrase_pair_candidates(&index.phrases);
    candidates.extend(extra_pairs.iter().copied());
    for &(a, b) in &candidates {
        if signals.sim_ppdb(&index.phrases[a], &index.phrases[b]) == 1.0 {
            side_edges.push((index.phrases[a].clone(), index.phrases[b].clone()));
        }
    }
    retrofit(&mut store, &side_edges, &RetrofitOptions::default());
    candidates.sort_unstable();
    candidates.dedup();
    let edges: Vec<(usize, usize, f64)> = candidates
        .into_iter()
        .map(|(a, b)| {
            let s = match (store.get(&index.phrases[a]), store.get(&index.phrases[b])) {
                (Some(x), Some(y)) => jocl_embed::vector::cosine01(x, y),
                _ => 0.0,
            };
            (a, b, s)
        })
        .collect();
    hac_phrases(&index, &edges, threshold)
}

/// **SIST** (Lin & Chen 2019): string similarity combined with
/// source-text side information — candidate entities seen in context,
/// their type compatibility, and the document domain — then HAC.
pub fn sist(okb: &Okb, ckb: &Ckb, signals: &Signals, threshold: f64) -> Clustering {
    let index = phrase_index(okb);
    // Aggregate side info per phrase over its mentions.
    let mut side_cands: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); index.phrases.len()];
    let mut side_domains: Vec<FxHashSet<String>> = vec![FxHashSet::default(); index.phrases.len()];
    for m in okb.np_mentions() {
        let pi = index.of_mention[m.dense()];
        if let Some(si) = okb.side_info(m.triple) {
            let cands = match m.slot {
                NpSlot::Subject => &si.subject_candidates,
                NpSlot::Object => &si.object_candidates,
            };
            side_cands[pi].extend(cands.iter().map(|e| e.0));
            if !si.domain.is_empty() {
                side_domains[pi].insert(si.domain.clone());
            }
        }
    }
    let types_of = |ids: &FxHashSet<u32>| -> Vec<String> {
        ids.iter().flat_map(|&e| ckb.entity(jocl_kb::EntityId(e)).types.clone()).collect()
    };
    let edges: Vec<(usize, usize, f64)> = phrase_pair_candidates(&index.phrases)
        .into_iter()
        .map(|(a, b)| {
            let (pa, pb) = (&index.phrases[a], &index.phrases[b]);
            let string_sim = 0.5 * signals.sim_idf_np(pa, pb) + 0.5 * jaro_winkler(pa, pb);
            let (ca, cb) = (&side_cands[a], &side_cands[b]);
            // Candidate containment: how much of the smaller context
            // candidate set recurs in the other. This is SIST's strongest
            // signal — two phrases whose source sentences mention the
            // same entities are likely co-referent.
            let cand_overlap = if ca.is_empty() || cb.is_empty() {
                0.0
            } else {
                let inter = ca.intersection(cb).count();
                inter as f64 / ca.len().min(cb.len()) as f64
            };
            let type_overlap = if ca.is_empty() || cb.is_empty() {
                0.0
            } else {
                jaccard_slices(&types_of(ca), &types_of(cb))
            };
            let domain = f64::from(
                !side_domains[a].is_empty()
                    && side_domains[a].intersection(&side_domains[b]).count() > 0,
            );
            let s = 0.4 * string_sim + 0.45 * cand_overlap + 0.05 * type_overlap + 0.1 * domain;
            (a, b, s)
        })
        .collect();
    hac_phrases(&index, &edges, threshold)
}

/// Group NP mentions of identical phrases (helper shared by tests).
pub fn identical_phrase_clustering(okb: &Okb) -> Clustering {
    let index = phrase_index(okb);
    let labels: Vec<u32> = index.of_mention.iter().map(|&p| p as u32).collect();
    Clustering::from_labels(&labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jocl_core::example::figure1;
    use jocl_core::signals::build_signals;
    use jocl_embed::SgnsOptions;
    use jocl_kb::TripleId;

    fn fig() -> (jocl_core::example::Figure1, Signals) {
        let ex = figure1();
        let signals = build_signals(
            &ex.okb,
            &ex.ckb,
            &ex.ppdb,
            &ex.corpus,
            &SgnsOptions { dim: 16, epochs: 10, ..Default::default() },
        );
        (ex, signals)
    }

    fn np(t: u32, slot: NpSlot) -> usize {
        NpMention { triple: TripleId(t), slot }.dense()
    }

    #[test]
    fn phrase_index_dedups() {
        let (ex, _) = fig();
        let idx = phrase_index(&ex.okb);
        assert_eq!(idx.phrases.len(), 6);
        assert_eq!(idx.of_mention.len(), 6);
    }

    #[test]
    fn identical_phrases_share_cluster() {
        let mut okb = Okb::new();
        okb.add_triple(jocl_kb::Triple::new("Same NP", "r", "x"));
        okb.add_triple(jocl_kb::Triple::new("same np", "r", "y"));
        let c = identical_phrase_clustering(&okb);
        assert!(c.same(0, 2)); // the two subjects
    }

    #[test]
    fn morph_norm_groups_identical_forms_only() {
        let (ex, _) = fig();
        let c = morph_norm(&ex.okb);
        assert!(!c.same(np(0, NpSlot::Subject), np(1, NpSlot::Subject)));
        assert!(!c.same(np(1, NpSlot::Object), np(2, NpSlot::Object)));
    }

    #[test]
    fn text_similarity_does_not_merge_distinct_universities() {
        let (ex, signals) = fig();
        let c = text_similarity(&ex.okb, &signals, 0.93);
        assert!(!c.same(np(0, NpSlot::Subject), np(2, NpSlot::Subject)));
    }

    #[test]
    fn idf_token_overlap_separates_universities() {
        let (ex, signals) = fig();
        let c = idf_token_overlap(&ex.okb, &signals, 0.6);
        assert!(!c.same(np(0, NpSlot::Subject), np(2, NpSlot::Subject)));
    }

    #[test]
    fn wikidata_integrator_groups_by_link() {
        let (ex, _) = fig();
        let (c, links) = wikidata_integrator(&ex.okb, &ex.ckb);
        assert_eq!(links[np(0, NpSlot::Subject)], Some(ex.e_umd));
        assert_eq!(links[np(1, NpSlot::Subject)], Some(ex.e_umd));
        assert!(c.same(np(0, NpSlot::Subject), np(1, NpSlot::Subject)));
    }

    #[test]
    fn cesi_uses_ppdb_side_information() {
        let (ex, signals) = fig();
        let c = cesi(&ex.okb, &ex.ckb, &signals, 0.9);
        assert!(
            c.same(np(0, NpSlot::Subject), np(1, NpSlot::Subject)),
            "CESI should merge the PPDB-equivalent phrases"
        );
    }

    #[test]
    fn attribute_overlap_runs() {
        let (ex, signals) = fig();
        let c = attribute_overlap(&ex.okb, &signals, 0.5);
        assert_eq!(c.len(), ex.okb.num_np_mentions());
    }

    #[test]
    fn sist_without_side_info_degrades_to_strings() {
        let (ex, signals) = fig();
        let c = sist(&ex.okb, &ex.ckb, &signals, 0.45);
        assert_eq!(c.len(), 6);
        assert!(!c.same(np(0, NpSlot::Subject), np(2, NpSlot::Subject)));
    }
}
