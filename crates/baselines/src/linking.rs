//! OKB entity / relation linking baselines (paper §4.3, Table 3 and
//! Figure 3).
//!
//! All entity linkers return one `Option<EntityId>` per dense NP mention;
//! relation linkers one `Option<RelationId>` per RP mention.

use jocl_kb::{
    CandidateGen, CandidateOptions, Ckb, EntityId, NpMention, NpSlot, Okb, RelationId, RpMention,
};
use jocl_rules::ParaphraseStore;
use jocl_text::fx::FxHashMap;
use jocl_text::normalize::morph_normalize_rp;
use jocl_text::sim::{levenshtein_sim, ngram_jaccard};

/// **Spotlight**-style linking: popularity prior blended with lexical
/// similarity, every mention independent.
pub fn spotlight(okb: &Okb, ckb: &Ckb) -> Vec<Option<EntityId>> {
    let gen =
        CandidateGen::new(ckb, CandidateOptions { lexical_weight: 0.35, ..Default::default() });
    let mut cache: FxHashMap<String, Option<EntityId>> = FxHashMap::default();
    okb.np_mentions()
        .map(|m| {
            let phrase = okb.np_phrase(m);
            *cache
                .entry(phrase.to_lowercase())
                .or_insert_with(|| gen.entity_candidates(phrase).first().map(|s| s.id))
        })
        .collect()
}

/// **TagMe**-style collective linking: within each triple, candidates of
/// one NP vote for candidates of the other through CKB relatedness
/// (fact co-occurrence), added to the popularity prior.
pub fn tagme(okb: &Okb, ckb: &Ckb) -> Vec<Option<EntityId>> {
    let gen = CandidateGen::new(ckb, CandidateOptions::default());
    let mut out = vec![None; okb.num_np_mentions()];
    for (t, tr) in okb.triples() {
        let subj_cands = gen.entity_candidates(&tr.subject);
        let obj_cands = gen.entity_candidates(&tr.object);
        let vote = |own: &[jocl_kb::candidates::Scored<EntityId>],
                    other: &[jocl_kb::candidates::Scored<EntityId>]|
         -> Option<EntityId> {
            own.iter()
                .map(|c| {
                    let relatedness: f64 = other
                        .iter()
                        .map(|o| f64::from(ckb.cooccurs(c.id, o.id)) * o.score)
                        .sum::<f64>()
                        / (other.len().max(1) as f64);
                    (c.id, c.score + relatedness)
                })
                .max_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| b.0.cmp(&a.0))
                })
                .map(|(id, _)| id)
        };
        out[NpMention { triple: t, slot: NpSlot::Subject }.dense()] = vote(&subj_cands, &obj_cands);
        out[NpMention { triple: t, slot: NpSlot::Object }.dense()] = vote(&obj_cands, &subj_cands);
    }
    out
}

/// **Falcon**-style joint linking: English-morphology candidate expansion
/// (full phrase → head word), n-gram alias matching, then joint
/// re-ranking of `(subject, relation, object)` combinations by fact
/// existence. Returns both entity and relation links.
pub fn falcon(okb: &Okb, ckb: &Ckb) -> (Vec<Option<EntityId>>, Vec<Option<RelationId>>) {
    let gen = CandidateGen::new(ckb, CandidateOptions::default());
    let mut np_links = vec![None; okb.num_np_mentions()];
    let mut rp_links = vec![None; okb.num_rp_mentions()];
    for (t, tr) in okb.triples() {
        // Morphology-driven candidate retrieval: try the full phrase,
        // fall back to the headword (last token).
        let retrieve = |phrase: &str| -> Vec<jocl_kb::candidates::Scored<EntityId>> {
            let full = gen.entity_candidates(phrase);
            if !full.is_empty() {
                return full;
            }
            match jocl_text::tokenize(phrase).last() {
                Some(head) => gen.entity_candidates(head),
                None => Vec::new(),
            }
        };
        let subj_cands = retrieve(&tr.subject);
        let obj_cands = retrieve(&tr.object);
        let rel_cands = gen.relation_candidates(&tr.predicate);
        // Joint re-rank: lexical scores plus a fact-existence bonus.
        let mut best: Option<(f64, EntityId, RelationId, EntityId)> = None;
        for s in subj_cands.iter().take(4) {
            for r in rel_cands.iter().take(4) {
                for o in obj_cands.iter().take(4) {
                    let mut score = s.score + r.score + o.score;
                    if ckb.has_fact(s.id, r.id, o.id) {
                        score += 2.0;
                    }
                    if best.as_ref().is_none_or(|b| score > b.0) {
                        best = Some((score, s.id, r.id, o.id));
                    }
                }
            }
        }
        match best {
            Some((_, s, r, o)) => {
                np_links[NpMention { triple: t, slot: NpSlot::Subject }.dense()] = Some(s);
                np_links[NpMention { triple: t, slot: NpSlot::Object }.dense()] = Some(o);
                rp_links[RpMention(t).dense()] = Some(r);
            }
            None => {
                // Partial fallbacks.
                np_links[NpMention { triple: t, slot: NpSlot::Subject }.dense()] =
                    subj_cands.first().map(|c| c.id);
                np_links[NpMention { triple: t, slot: NpSlot::Object }.dense()] =
                    obj_cands.first().map(|c| c.id);
                rp_links[RpMention(t).dense()] = rel_cands.first().map(|c| c.id);
            }
        }
    }
    (np_links, rp_links)
}

/// **EARL**-style joint linking: candidates are scored by *connection
/// density* in the CKB graph (structure over popularity), approximating
/// the GTSP formulation with pairwise co-occurrence plus degree
/// normalization.
pub fn earl(okb: &Okb, ckb: &Ckb) -> (Vec<Option<EntityId>>, Vec<Option<RelationId>>) {
    let gen =
        CandidateGen::new(ckb, CandidateOptions { lexical_weight: 0.9, ..Default::default() });
    let mut np_links = vec![None; okb.num_np_mentions()];
    let mut rp_links = vec![None; okb.num_rp_mentions()];
    for (t, tr) in okb.triples() {
        let subj_cands = gen.entity_candidates(&tr.subject);
        let obj_cands = gen.entity_candidates(&tr.object);
        let rel_cands = gen.relation_candidates(&tr.predicate);
        let mut best: Option<(f64, EntityId, RelationId, EntityId)> = None;
        for s in subj_cands.iter().take(5) {
            for r in rel_cands.iter().take(5) {
                for o in obj_cands.iter().take(5) {
                    // Connection density: direct fact, co-occurrence and a
                    // light degree prior; lexical scores as tie-breakers.
                    let mut density = 0.0;
                    if ckb.has_fact(s.id, r.id, o.id) {
                        density += 3.0;
                    }
                    if ckb.cooccurs(s.id, o.id) {
                        density += 1.0;
                    }
                    density += (ckb.degree(s.id) as f64 + 1.0).ln() * 0.05;
                    density += (ckb.degree(o.id) as f64 + 1.0).ln() * 0.05;
                    let score = density + 0.5 * (s.score + r.score + o.score);
                    if best.as_ref().is_none_or(|b| score > b.0) {
                        best = Some((score, s.id, r.id, o.id));
                    }
                }
            }
        }
        if let Some((_, s, r, o)) = best {
            np_links[NpMention { triple: t, slot: NpSlot::Subject }.dense()] = Some(s);
            np_links[NpMention { triple: t, slot: NpSlot::Object }.dense()] = Some(o);
            rp_links[RpMention(t).dense()] = Some(r);
        }
    }
    (np_links, rp_links)
}

/// **KBPearl**-style linking: a pseudo-document of `window` consecutive
/// triples forms one semantic graph over all candidates; a greedy
/// dense-subgraph peeling (remove the weakest candidate until each
/// mention keeps one) produces the assignment.
pub fn kbpearl(
    okb: &Okb,
    ckb: &Ckb,
    window: usize,
) -> (Vec<Option<EntityId>>, Vec<Option<RelationId>>) {
    let gen = CandidateGen::new(ckb, CandidateOptions::default());
    let mut np_links = vec![None; okb.num_np_mentions()];
    let mut rp_links = vec![None; okb.num_rp_mentions()];
    let window = window.max(1);
    let triples: Vec<_> = okb.triples().collect();
    for chunk in triples.chunks(window) {
        // Mentions of this pseudo-document with their candidates.
        struct MentionSlot {
            np_dense: Option<usize>,
            rp_dense: Option<usize>,
            candidates: Vec<(u32, f64)>, // entity or relation id + lexical score
            is_np: bool,
        }
        let mut slots: Vec<MentionSlot> = Vec::new();
        for (t, tr) in chunk {
            for (slot, phrase) in [(NpSlot::Subject, &tr.subject), (NpSlot::Object, &tr.object)] {
                slots.push(MentionSlot {
                    np_dense: Some(NpMention { triple: *t, slot }.dense()),
                    rp_dense: None,
                    candidates: gen
                        .entity_candidates(phrase)
                        .into_iter()
                        .map(|c| (c.id.0, c.score))
                        .collect(),
                    is_np: true,
                });
            }
            slots.push(MentionSlot {
                np_dense: None,
                rp_dense: Some(RpMention(*t).dense()),
                candidates: gen
                    .relation_candidates(&tr.predicate)
                    .into_iter()
                    .map(|c| (c.id.0, c.score))
                    .collect(),
                is_np: false,
            });
        }
        // Greedy peeling: repeatedly drop the lowest-support candidate of
        // any slot with > 1 candidate. Support = lexical score + CKB
        // coherence with all other slots' surviving candidates.
        let coherence = |slot_i: usize, cand: (u32, f64), slots: &[MentionSlot]| -> f64 {
            let mut score = cand.1;
            for (j, other) in slots.iter().enumerate() {
                if j == slot_i || other.candidates.is_empty() {
                    continue;
                }
                let best_rel = other
                    .candidates
                    .iter()
                    .map(|&(oc, _)| {
                        if slots[slot_i].is_np && other.is_np {
                            f64::from(ckb.cooccurs(EntityId(cand.0), EntityId(oc)))
                        } else {
                            0.0
                        }
                    })
                    .fold(0.0, f64::max);
                score += 0.2 * best_rel;
            }
            score
        };
        loop {
            let mut worst: Option<(usize, usize, f64)> = None;
            for (i, slot) in slots.iter().enumerate() {
                if slot.candidates.len() <= 1 {
                    continue;
                }
                for (ci, &cand) in slot.candidates.iter().enumerate() {
                    let s = coherence(i, cand, &slots);
                    if worst.as_ref().is_none_or(|w| s < w.2) {
                        worst = Some((i, ci, s));
                    }
                }
            }
            match worst {
                Some((i, ci, _)) => {
                    slots[i].candidates.remove(ci);
                }
                None => break,
            }
        }
        for slot in slots {
            let winner = slot.candidates.first().map(|&(id, _)| id);
            if let (Some(d), Some(w)) = (slot.np_dense, winner) {
                np_links[d] = Some(EntityId(w));
            }
            if let (Some(d), Some(w)) = (slot.rp_dense, winner) {
                rp_links[d] = Some(RelationId(w));
            }
        }
    }
    (np_links, rp_links)
}

/// **Rematch**-style relation linking: Levenshtein distance plus
/// synonym-set expansion against relation surface forms.
pub fn rematch(okb: &Okb, ckb: &Ckb, synsets: &ParaphraseStore) -> Vec<Option<RelationId>> {
    let mut cache: FxHashMap<String, Option<RelationId>> = FxHashMap::default();
    okb.rp_mentions()
        .map(|m| {
            let phrase = okb.rp_phrase(m);
            *cache.entry(phrase.to_lowercase()).or_insert_with(|| {
                let normed = morph_normalize_rp(phrase);
                let mut best: Option<(f64, RelationId)> = None;
                for (rid, rel) in ckb.relations() {
                    for sf in &rel.surface_forms {
                        let sf_norm = morph_normalize_rp(sf);
                        let mut s = levenshtein_sim(&normed, &sf_norm)
                            .max(ngram_jaccard(&normed, &sf_norm));
                        if synsets.sim(&normed, &sf_norm) == 1.0 {
                            s = 1.0;
                        }
                        if best.is_none_or(|b| s > b.0) {
                            best = Some((s, rid));
                        }
                    }
                }
                best.and_then(|(s, r)| (s >= 0.4).then_some(r))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jocl_core::example::figure1;
    use jocl_kb::TripleId;

    fn np(t: u32, slot: NpSlot) -> usize {
        NpMention { triple: TripleId(t), slot }.dense()
    }

    #[test]
    fn spotlight_links_by_popularity() {
        let ex = figure1();
        let links = spotlight(&ex.okb, &ex.ckb);
        // "Maryland" is dominated by the state in the anchor statistics.
        assert_eq!(links[np(0, NpSlot::Object)], Some(ex.e_maryland));
        assert_eq!(links[np(1, NpSlot::Subject)], Some(ex.e_umd));
    }

    #[test]
    fn tagme_votes_with_cooccurrence() {
        let ex = figure1();
        let links = tagme(&ex.okb, &ex.ckb);
        // Subject "UMD" and object "Universitas 21" co-occur in a fact.
        assert_eq!(links[np(1, NpSlot::Subject)], Some(ex.e_umd));
        assert_eq!(links[np(1, NpSlot::Object)], Some(ex.e_u21));
    }

    #[test]
    fn falcon_joint_reranking_uses_facts() {
        let ex = figure1();
        let (np_links, rp_links) = falcon(&ex.okb, &ex.ckb);
        assert_eq!(np_links[np(2, NpSlot::Subject)], Some(ex.e_uva));
        assert_eq!(rp_links[RpMention(TripleId(1)).dense()], Some(ex.r_member));
    }

    #[test]
    fn earl_prefers_connected_candidates() {
        let ex = figure1();
        let (np_links, _) = earl(&ex.okb, &ex.ckb);
        // (UVA, member, U21) is a fact → connection density picks it.
        assert_eq!(np_links[np(2, NpSlot::Subject)], Some(ex.e_uva));
        assert_eq!(np_links[np(2, NpSlot::Object)], Some(ex.e_u21));
    }

    #[test]
    fn kbpearl_produces_full_assignments() {
        let ex = figure1();
        let (np_links, rp_links) = kbpearl(&ex.okb, &ex.ckb, 3);
        let linked = np_links.iter().flatten().count();
        assert!(linked >= 5, "most mentions should be linked: {np_links:?}");
        assert!(rp_links.iter().flatten().count() >= 2);
    }

    #[test]
    fn rematch_links_relations_by_morphology() {
        let ex = figure1();
        let links = rematch(&ex.okb, &ex.ckb, &ParaphraseStore::new());
        assert_eq!(links[RpMention(TripleId(0)).dense()], Some(ex.r_location));
        assert_eq!(links[RpMention(TripleId(1)).dense()], Some(ex.r_member));
        // "be an early member of" normalizes close to "member of".
        assert_eq!(links[RpMention(TripleId(2)).dense()], Some(ex.r_member));
    }

    #[test]
    fn empty_okb_yields_empty_links() {
        let ex = figure1();
        let empty = Okb::new();
        assert!(spotlight(&empty, &ex.ckb).is_empty());
        assert!(tagme(&empty, &ex.ckb).is_empty());
        let (a, b) = falcon(&empty, &ex.ckb);
        assert!(a.is_empty() && b.is_empty());
    }
}
