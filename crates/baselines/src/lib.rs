#![forbid(unsafe_code)]
//! # jocl-baselines
//!
//! Reimplementations of every system the paper compares against
//! (§4.2, §4.3). Each baseline keeps the *scoring principle* of the
//! original while running on the same substrate as JOCL, so comparisons
//! isolate the algorithmic idea rather than engineering differences:
//!
//! **NP canonicalization** (Table 1): Morph Norm, Wikidata Integrator,
//! Text Similarity, IDF Token Overlap, Attribute Overlap, CESI, SIST.
//!
//! **RP canonicalization** (Table 2): AMIE, PATTY, SIST.
//!
//! **OKB entity linking** (Table 3): Spotlight, TagMe, Falcon, EARL,
//! KBPearl.
//!
//! **OKB relation linking** (Figure 3): Falcon, EARL, KBPearl, Rematch.
//!
//! See `DESIGN.md` §4 for what each reimplementation preserves.

pub mod linking;
pub mod np;
pub mod rp;

pub use linking::{earl, falcon, kbpearl, rematch, spotlight, tagme};
pub use np::{
    attribute_overlap, cesi, idf_token_overlap, morph_norm, sist, text_similarity,
    wikidata_integrator,
};
pub use rp::{amie_baseline, patty, sist_rp};
