//! The five rule families. Each rule is a pure function from a
//! [`ScannedFile`] to raw findings; allowlist filtering and staleness
//! live in the runner (`lib.rs`), so rules stay side-effect free and
//! fixture-testable in isolation.

use crate::lex::ScannedFile;
use std::collections::BTreeSet;

/// Rule identity: id, short name, allowlist file, contract text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    EnvConfinement,
    PoisonRecovery,
    UnsafeInventory,
    Determinism,
    WirePath,
    /// Allowlist/configuration integrity (stale entries, bad TOML).
    Config,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::EnvConfinement => "R1",
            Rule::PoisonRecovery => "R2",
            Rule::UnsafeInventory => "R3",
            Rule::Determinism => "R4",
            Rule::WirePath => "R5",
            Rule::Config => "LINT",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Rule::EnvConfinement => "env-confinement",
            Rule::PoisonRecovery => "poison-recovery",
            Rule::UnsafeInventory => "unsafe-inventory",
            Rule::Determinism => "determinism",
            Rule::WirePath => "one-serialization-path",
            Rule::Config => "lint-config",
        }
    }

    /// The allowlist file under `lint/` (None: rule has no allowlist).
    pub fn allowlist_file(self) -> Option<&'static str> {
        match self {
            Rule::EnvConfinement => Some("r1_env.toml"),
            Rule::PoisonRecovery => Some("r2_locks.toml"),
            Rule::UnsafeInventory => Some("unsafe_inventory.toml"),
            Rule::Determinism => Some("r4_determinism.toml"),
            Rule::WirePath => Some("r5_wire.toml"),
            Rule::Config => None,
        }
    }

    pub fn hint(self) -> &'static str {
        match self {
            Rule::EnvConfinement => {
                "route the knob through a jocl_bench::env accessor (one place owns \
                 trim/case-fold/typed-panic parsing) or allowlist it in lint/r1_env.toml"
            }
            Rule::PoisonRecovery => {
                "recover the guard with .unwrap_or_else(std::sync::PoisonError::into_inner) \
                 (the PR-6 contract: one panicking request must not take down the listener)"
            }
            Rule::UnsafeInventory => {
                "add a `// SAFETY:` comment at the site and register it in \
                 lint/unsafe_inventory.toml so new unsafe is reviewed by name"
            }
            Rule::Determinism => {
                "iterate a sorted Vec instead (collect + sort_unstable_by_key), or allowlist \
                 the site in lint/r4_determinism.toml if it is provably order-insensitive"
            }
            Rule::WirePath => {
                "build/parse frames through jocl_serve::{protocol, api} — wire literals \
                 live in exactly one place so writer, replica and clients cannot drift"
            }
            Rule::Config => "fix or remove the allowlist entry; it no longer matches any site",
        }
    }

    pub fn explain(self) -> &'static str {
        match self {
            Rule::EnvConfinement => {
                "R1 env-confinement: `JOCL_*` environment knobs may only be read or written in \
                 crates/bench/src/env.rs. Every other call site must go through that module's \
                 accessors, which own the parsing discipline (trim, ASCII case-fold, `off`, \
                 typed panics listing valid forms). A raw std::env::var(\"JOCL_…\") elsewhere \
                 re-grows per-site parsing drift — the exact bug the PR-6 consolidation removed."
            }
            Rule::PoisonRecovery => {
                "R2 poison-recovery: `.lock()`/`.read()`/`.write()` results must never be \
                 `.unwrap()`/`.expect()`ed outside test code. A panicking request poisons the \
                 mutex; unwrap turns every *subsequent* request into a cascade panic that kills \
                 the serve listener. Recover the guard with \
                 .unwrap_or_else(std::sync::PoisonError::into_inner) — state behind jocl locks \
                 is written atomically under the guard, so recovery is sound (PR-6 contract)."
            }
            Rule::UnsafeInventory => {
                "R3 unsafe-inventory: every `unsafe` block/impl/fn must carry a `// SAFETY:` \
                 comment within 3 lines above (or 2 below, for unsafe fns documented in-body) \
                 AND be registered in lint/unsafe_inventory.toml. Crates with no unsafe at all \
                 must declare #![forbid(unsafe_code)] in src/lib.rs so unsafe cannot creep in \
                 silently. The inventory pins sites by (file, context substring, count), so a \
                 new unsafe site is a reviewable allowlist diff, never a silent addition."
            }
            Rule::Determinism => {
                "R4 determinism: inside the designated serialization/fingerprint modules \
                 (kb::snap, kb::side, serve::{protocol, api, snapshot}, core::feed) hash-map \
                 iteration (.iter()/.keys()/.values()/.into_iter()/.drain/for … in map) and \
                 wall-clock reads (Instant::now, SystemTime) are flagged: bitwise-identical \
                 decodes across threads, schedules and replicas only hold if nothing \
                 order-dependent or time-dependent reaches a serialized byte. A site is exempt \
                 when a `sort` call is adjacent (within 3 lines above / 14 below — the \
                 collect-then-sort idiom) or explicitly allowlisted with a reason."
            }
            Rule::WirePath => {
                "R5 one-serialization-path: the wire-frame literals (\"OK \", \"ERR \", \
                 \"query.v1\", \"link.v1\", \"stats.v1\", \"metrics.v1\", \"jocl://\", \
                 \"ckb://\") may appear in string literals only in \
                 crates/serve/src/protocol.rs, crates/serve/src/api.rs and \
                 crates/serve/tests/. Everyone else — bins, gates, replicas — must call the \
                 format_*/parse_* helpers, so there is exactly one serialization path and \
                 writer/replica frames stay byte-identical by construction."
            }
            Rule::Config => {
                "LINT lint-config: allowlist integrity. An entry whose (file, context) no \
                 longer matches any site is stale and fails the run; an entry with `count = n` \
                 must match exactly n sites, so copy-pasted new violations cannot ride along \
                 under an old exemption."
            }
        }
    }

    pub fn from_query(s: &str) -> Option<Rule> {
        let s = s.trim().to_ascii_lowercase();
        ALL_RULES.iter().copied().find(|r| r.id().eq_ignore_ascii_case(&s) || r.name() == s)
    }
}

pub const ALL_RULES: [Rule; 6] = [
    Rule::EnvConfinement,
    Rule::PoisonRecovery,
    Rule::UnsafeInventory,
    Rule::Determinism,
    Rule::WirePath,
    Rule::Config,
];

/// One violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    /// Root-relative `/`-separated path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.rule.name(),
            self.msg
        )
    }
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// True when `rel` is test code by path (`tests/` directories).
pub fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/")
}

/// All offsets of `pat` in `hay` (non-overlapping).
fn find_all(hay: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(pat) {
        out.push(from + p);
        from += p + pat.len();
    }
    out
}

/// Whether `code[at..at+len]` is a whole word (no ident chars hugging it).
fn is_word(code: &str, at: usize, len: usize) -> bool {
    let b = code.as_bytes();
    let before_ok = at == 0 || !is_ident_char(b[at - 1]);
    let after_ok = at + len >= b.len() || !is_ident_char(b[at + len]);
    before_ok && after_ok
}

// ---------------------------------------------------------------------
// R1 env-confinement
// ---------------------------------------------------------------------

/// The single file allowed to touch `JOCL_*` env vars.
pub const ENV_HOME: &str = "crates/bench/src/env.rs";

pub fn check_env_confinement(f: &ScannedFile) -> Vec<Finding> {
    if f.rel == ENV_HOME {
        return Vec::new();
    }
    let mut lines = BTreeSet::new();
    for pat in ["env::var", "env::set_var", "env::remove_var"] {
        for at in find_all(&f.code, pat) {
            // `env::var_os` also begins with `env::var`; same site.
            let line = f.line_of(at);
            let jocl = [line, line + 1].iter().any(|&n| {
                f.lines
                    .get(n.wrapping_sub(1))
                    .is_some_and(|l| l.strings.iter().any(|s| s.contains("JOCL_")))
            });
            if jocl {
                lines.insert(line);
            }
        }
    }
    lines
        .into_iter()
        .map(|line| Finding {
            rule: Rule::EnvConfinement,
            file: f.rel.clone(),
            line,
            msg: format!("JOCL_* env knob accessed outside {ENV_HOME}"),
        })
        .collect()
}

// ---------------------------------------------------------------------
// R2 poison-recovery
// ---------------------------------------------------------------------

pub fn check_poison_recovery(f: &ScannedFile) -> Vec<Finding> {
    if is_test_path(&f.rel) {
        return Vec::new();
    }
    let cfg_test = f.cfg_test_line().unwrap_or(usize::MAX);
    let mut out = Vec::new();
    let bytes = f.code.as_bytes();
    let skip_ws = |mut i: usize| -> usize {
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        i
    };
    for call in [".lock(", ".read(", ".write("] {
        for at in find_all(&f.code, call) {
            let mut i = skip_ws(at + call.len());
            if bytes.get(i) != Some(&b')') {
                continue; // has arguments: not a guard acquisition
            }
            i = skip_ws(i + 1);
            if bytes.get(i) != Some(&b'.') {
                continue;
            }
            i = skip_ws(i + 1);
            let rest = &f.code[i..];
            let method = ["unwrap", "expect"].iter().find(|m| rest.starts_with(**m));
            let Some(method) = method else { continue };
            let after = i + method.len();
            if bytes.get(after) != Some(&b'(') {
                continue; // unwrap_or_else(PoisonError::into_inner) etc.
            }
            let line = f.line_of(at);
            if line >= cfg_test {
                continue; // #[cfg(test)] region
            }
            out.push(Finding {
                rule: Rule::PoisonRecovery,
                file: f.rel.clone(),
                line,
                msg: format!("{call})…{method}() on a lock result outside test code"),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// R3 unsafe-inventory (site scan; inventory matching lives in lib.rs)
// ---------------------------------------------------------------------

/// Every `unsafe` token site (1-indexed lines) in the file.
pub fn unsafe_sites(f: &ScannedFile) -> Vec<usize> {
    find_all(&f.code, "unsafe")
        .into_iter()
        .filter(|&at| is_word(&f.code, at, "unsafe".len()))
        .map(|at| f.line_of(at))
        .collect()
}

/// SAFETY-comment check for one unsafe site: a comment containing
/// `SAFETY` within 3 lines above through 2 lines below (unsafe fns are
/// conventionally documented just inside the body).
pub fn has_safety_comment(f: &ScannedFile, line: usize) -> bool {
    let lo = line.saturating_sub(3).max(1);
    (lo..=line + 2).any(|n| f.comment_line(n).contains("SAFETY"))
}

pub fn check_safety_comments(f: &ScannedFile) -> Vec<Finding> {
    unsafe_sites(f)
        .into_iter()
        .filter(|&line| !has_safety_comment(f, line))
        .map(|line| Finding {
            rule: Rule::UnsafeInventory,
            file: f.rel.clone(),
            line,
            msg: "unsafe site without an adjacent // SAFETY: comment".to_string(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// R4 determinism
// ---------------------------------------------------------------------

/// The serialization/fingerprint modules whose bytes must not depend on
/// hash-map iteration order or wall-clock time.
pub const DETERMINISM_MODULES: [&str; 6] = [
    "crates/kb/src/snap.rs",
    "crates/kb/src/side.rs",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/api.rs",
    "crates/serve/src/snapshot.rs",
    "crates/core/src/feed.rs",
];

/// Identifiers bound to a `HashMap`/`HashSet`-ish type anywhere in the
/// file (covers `FxHashMap`/`FxHashSet` by substring): `let x: T`,
/// `field: T`, `param: T` and `let x = FxHashMap::default()`.
fn map_idents(f: &ScannedFile) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for l in &f.lines {
        for pat in ["HashMap", "HashSet"] {
            for at in find_all(&l.code, pat) {
                if let Some(name) = binding_before(&l.code, at) {
                    set.insert(name);
                }
            }
        }
    }
    set
}

/// The identifier bound at a type occurrence: the ident before the last
/// single `:` preceding `at`, else the ident after a `let [mut]`.
fn binding_before(code: &str, at: usize) -> Option<String> {
    let prefix = &code[..at];
    let b = prefix.as_bytes();
    let mut colon = None;
    for (i, &c) in b.iter().enumerate() {
        if c == b':' && b.get(i + 1) != Some(&b':') && (i == 0 || b[i - 1] != b':') {
            colon = Some(i);
        }
    }
    let ident_ending_at = |end: usize| -> Option<String> {
        let mut s = end;
        while s > 0 && (b[s - 1] as char).is_whitespace() {
            s -= 1;
        }
        let stop = s;
        while s > 0 && is_ident_char(b[s - 1]) {
            s -= 1;
        }
        (s < stop).then(|| prefix[s..stop].to_string())
    };
    if let Some(c) = colon {
        return ident_ending_at(c);
    }
    // `let [mut] name = FxHashMap::default()`-style binding.
    let let_at = prefix.rfind("let ")?;
    let tail = prefix[let_at + 4..].trim_start();
    let tail = tail.strip_prefix("mut ").unwrap_or(tail).trim_start();
    let end = tail.find(|c: char| !(c.is_alphanumeric() || c == '_')).unwrap_or(tail.len());
    (end > 0).then(|| tail[..end].to_string())
}

/// A `sort` call within 3 lines above / 14 below (the collect-then-sort
/// and sort-then-iterate idioms both qualify).
fn sort_adjacent(f: &ScannedFile, line: usize) -> bool {
    let lo = line.saturating_sub(3).max(1);
    (lo..=line + 14).any(|n| f.code_line(n).contains("sort"))
}

/// Receiver ident of a method call whose `.` is at flat offset `at`
/// (walks back over whitespace/newlines; None for call-expression
/// receivers like `foo().iter()`).
fn receiver_ident(code: &str, at: usize) -> Option<String> {
    let b = code.as_bytes();
    let mut i = at;
    while i > 0 && (b[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    let stop = i;
    while i > 0 && is_ident_char(b[i - 1]) {
        i -= 1;
    }
    (i < stop).then(|| code[i..stop].to_string())
}

pub fn check_determinism(f: &ScannedFile) -> Vec<Finding> {
    if !DETERMINISM_MODULES.contains(&f.rel.as_str()) {
        return Vec::new();
    }
    let maps = map_idents(f);
    let mut hits: BTreeSet<(usize, String)> = BTreeSet::new();

    for call in [".iter()", ".keys()", ".values()", ".into_iter()", ".drain("] {
        for at in find_all(&f.code, call) {
            let Some(recv) = receiver_ident(&f.code, at) else { continue };
            if maps.contains(&recv) {
                hits.insert((f.line_of(at), format!("map iteration `{recv}{call}…`")));
            }
        }
    }
    // `for pat in <expr>` where the expression's trailing ident is a map.
    for (i, l) in f.lines.iter().enumerate() {
        let code = &l.code;
        let Some(for_at) = code.find("for ") else { continue };
        if !is_word(code, for_at, 3) {
            continue;
        }
        let Some(in_rel) = code[for_at..].find(" in ") else { continue };
        let tail = &code[for_at + in_rel + 4..];
        let tail = tail.split('{').next().unwrap_or(tail);
        let last_ident =
            tail.split(|c: char| !(c.is_alphanumeric() || c == '_')).rfind(|s| !s.is_empty());
        if let Some(ident) = last_ident {
            if maps.contains(ident) {
                hits.insert((i + 1, format!("`for … in {ident}` iterates a hash map")));
            }
        }
    }
    for pat in ["Instant::now", "SystemTime"] {
        for at in find_all(&f.code, pat) {
            hits.insert((
                f.line_of(at),
                format!("wall-clock read `{pat}` in a serialization module"),
            ));
        }
    }

    hits.into_iter()
        .filter(|&(line, _)| !sort_adjacent(f, line))
        .map(|(line, what)| Finding {
            rule: Rule::Determinism,
            file: f.rel.clone(),
            line,
            msg: format!("{what} — serialized bytes must not depend on iteration order or time"),
        })
        .collect()
}

// ---------------------------------------------------------------------
// R5 one-serialization-path
// ---------------------------------------------------------------------

/// The only non-test homes of wire-frame literals.
pub const WIRE_HOMES: [&str; 2] = ["crates/serve/src/protocol.rs", "crates/serve/src/api.rs"];

fn wire_token(s: &str) -> Option<&'static str> {
    for t in ["query.v1", "link.v1", "stats.v1", "metrics.v1", "jocl://", "ckb://"] {
        if s.contains(t) {
            return Some(t);
        }
    }
    ["OK ", "ERR "].into_iter().find(|t| s.starts_with(t))
}

pub fn check_wire_path(f: &ScannedFile) -> Vec<Finding> {
    if WIRE_HOMES.contains(&f.rel.as_str())
        || f.rel.starts_with("crates/serve/tests/")
        || f.rel.starts_with("crates/lint/")
    {
        // The lint crate itself necessarily names the tokens it polices.
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, l) in f.lines.iter().enumerate() {
        let mut tokens: Vec<&str> = l.strings.iter().filter_map(|s| wire_token(s)).collect();
        tokens.dedup();
        if let Some(t) = tokens.first() {
            out.push(Finding {
                rule: Rule::WirePath,
                file: f.rel.clone(),
                line: i + 1,
                msg: format!(
                    "wire literal {t:?} outside the serialization path ({} + serve tests)",
                    WIRE_HOMES.join(", ")
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::scan_source;

    #[test]
    fn r1_flags_raw_jocl_reads_but_not_env_home_or_other_vars() {
        let bad = scan_source(
            "crates/bench/src/runner.rs",
            "fn f() -> f64 { std::env::var(\"JOCL_SCALE\").ok().unwrap().parse().unwrap() }\n",
        );
        assert_eq!(check_env_confinement(&bad).len(), 1);
        let home = scan_source(ENV_HOME, "fn f() { std::env::var(\"JOCL_SCALE\").ok(); }\n");
        assert!(check_env_confinement(&home).is_empty());
        let other =
            scan_source("crates/kb/src/okb.rs", "fn f() { std::env::var(\"PATH\").ok(); }\n");
        assert!(check_env_confinement(&other).is_empty());
        let comment = scan_source("crates/kb/src/okb.rs", "// std::env::var(\"JOCL_SCALE\")\n");
        assert!(check_env_confinement(&comment).is_empty());
    }

    #[test]
    fn r2_flags_lock_unwrap_outside_tests() {
        let bad = scan_source("crates/x/src/lib.rs", "fn f() { m.lock().unwrap(); }\n");
        assert_eq!(check_poison_recovery(&bad).len(), 1);
        let multiline = scan_source(
            "crates/x/src/lib.rs",
            "fn f() {\n    m.lock()\n        .expect(\"p\");\n}\n",
        );
        assert_eq!(check_poison_recovery(&multiline).len(), 1);
        let good = scan_source(
            "crates/x/src/lib.rs",
            "fn f() { m.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n",
        );
        assert!(check_poison_recovery(&good).is_empty());
        let test_mod = scan_source(
            "crates/x/src/lib.rs",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { m.lock().unwrap(); }\n}\n",
        );
        assert!(check_poison_recovery(&test_mod).is_empty());
        let test_file = scan_source("crates/x/tests/t.rs", "fn f() { m.lock().unwrap(); }\n");
        assert!(check_poison_recovery(&test_file).is_empty());
        let args = scan_source("crates/x/src/lib.rs", "fn f() { file.write(buf).unwrap(); }\n");
        assert!(check_poison_recovery(&args).is_empty());
    }

    #[test]
    fn r3_safety_comment_window() {
        let bad = scan_source("crates/x/src/lib.rs", "fn f() { unsafe { danger() } }\n");
        assert_eq!(check_safety_comments(&bad).len(), 1);
        let above = scan_source(
            "crates/x/src/lib.rs",
            "// SAFETY: sound because reasons.\nfn f() { unsafe { danger() } }\n",
        );
        assert!(check_safety_comments(&above).is_empty());
        let below = scan_source(
            "crates/x/src/lib.rs",
            "unsafe fn g(p: *const ()) {\n    // SAFETY: caller contract.\n    danger(p)\n}\n",
        );
        assert!(check_safety_comments(&below).is_empty());
        // `unsafe_code` in an attribute is not an unsafe site.
        let attr = scan_source("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\n");
        assert!(unsafe_sites(&attr).is_empty());
    }

    #[test]
    fn r4_flags_map_iteration_and_time_only_in_designated_modules() {
        let src = "use jocl_text::fx::FxHashMap;\nfn f(votes: &FxHashMap<u32, usize>) {\n    for (k, v) in votes {\n        use_it(k, v);\n    }\n}\n";
        let designated = scan_source("crates/kb/src/side.rs", src);
        assert_eq!(check_determinism(&designated).len(), 1, "{:?}", check_determinism(&designated));
        let elsewhere = scan_source("crates/kb/src/okb.rs", src);
        assert!(check_determinism(&elsewhere).is_empty());

        let time = scan_source("crates/core/src/feed.rs", "fn f() { let t = Instant::now(); }\n");
        assert_eq!(check_determinism(&time).len(), 1);

        let vec_iter = scan_source(
            "crates/kb/src/side.rs",
            "fn f(xs: &[u32]) { for x in xs.iter() { use_it(x); } }\n",
        );
        assert!(check_determinism(&vec_iter).is_empty(), "slice iteration is fine");
    }

    #[test]
    fn r4_sort_adjacent_is_exempt() {
        let src = "fn f(votes: FxHashMap<u32, usize>) -> Vec<(u32, usize)> {\n    let mut rows: Vec<(u32, usize)> = votes.into_iter().collect();\n    rows.sort_unstable_by_key(|&(k, _)| k);\n    rows\n}\n";
        let f = scan_source("crates/kb/src/side.rs", src);
        assert!(check_determinism(&f).is_empty(), "{:?}", check_determinism(&f));
    }

    #[test]
    fn r5_wire_literals_confined() {
        let bad =
            scan_source("crates/bench/tests/x.rs", "fn f(h: &str) { h.strip_prefix(\"OK \"); }\n");
        assert_eq!(check_wire_path(&bad).len(), 1);
        let ok_home = scan_source(WIRE_HOMES[0], "fn f(h: &str) { h.strip_prefix(\"OK \"); }\n");
        assert!(check_wire_path(&ok_home).is_empty());
        let serve_test = scan_source(
            "crates/serve/tests/net.rs",
            "fn f() { assert!(l.contains(\"link.v1\")); }\n",
        );
        assert!(check_wire_path(&serve_test).is_empty());
        let comment_only =
            scan_source("crates/bench/src/bin/serve.rs", "//! resolves jocl://|ckb:// URIs\n");
        assert!(check_wire_path(&comment_only).is_empty(), "doc comments are not wire code");
        let lowercase = scan_source("crates/bench/src/bin/serve.rs", "println!(\"SERVE ok\");\n");
        assert!(check_wire_path(&lowercase).is_empty());
    }
}
