#![forbid(unsafe_code)]
//! `jocl_lint` — the workspace invariant checker.
//!
//! The repo's correctness story rests on invariants no compiler checks:
//! bitwise-identical decodes across threads/schedules/replicas, the
//! PR-6 poison-recovery contract on every lock, the PR-8
//! one-serialization-path discipline for `query.v1`/`link.v1` frames,
//! confinement of `JOCL_*` env knobs to `jocl_bench::env`, and a
//! by-name inventory of every `unsafe` site. This crate turns those
//! from prose into machine-enforced lints: a comments/strings-aware
//! lexical scanner ([`lex`]), five rule families ([`rules`]), and
//! checked-in allowlists ([`allow`]) under `lint/` whose entries are
//! themselves validated for staleness.
//!
//! Entry point: [`lint_root`]. The `jocl-lint` bin wraps it with
//! `--deny` / `--explain <rule>`.

pub mod allow;
pub mod lex;
pub mod rules;

use allow::Entry;
use lex::{scan_source, ScannedFile};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

pub use rules::{Finding, Rule, ALL_RULES};

/// Outcome of linting one root.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lint the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml` and the `lint/` allowlists). Returns `Err`
/// only for I/O or allowlist-syntax errors — a malformed allowlist
/// must fail the run, not silently allow nothing.
pub fn lint_root(root: &Path) -> Result<Report, String> {
    let paths = collect_rs_files(root)?;
    let mut files: BTreeMap<String, ScannedFile> = BTreeMap::new();
    for (rel, path) in &paths {
        let source = fs::read_to_string(path)
            .map_err(|e| format!("{}: read failed: {e}", path.display()))?;
        files.insert(rel.clone(), scan_source(rel, &source));
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut r1 = Vec::new();
    let mut r2 = Vec::new();
    let mut r4 = Vec::new();
    let mut r5 = Vec::new();
    for f in files.values() {
        r1.extend(rules::check_env_confinement(f));
        r2.extend(rules::check_poison_recovery(f));
        r4.extend(rules::check_determinism(f));
        r5.extend(rules::check_wire_path(f));
        // R3a: SAFETY comments are mandatory, never allowlistable.
        findings.extend(rules::check_safety_comments(f));
    }
    for (rule, batch) in [
        (Rule::EnvConfinement, r1),
        (Rule::PoisonRecovery, r2),
        (Rule::Determinism, r4),
        (Rule::WirePath, r5),
    ] {
        let entries = load_entries(root, rule, "allow")?;
        findings.extend(apply_allowlist(batch, &entries, &files, rule));
    }
    // R3b: every unsafe site must be registered in the inventory.
    findings.extend(check_inventory(root, &files)?);
    // R3c: unsafe-free crates must forbid unsafe outright.
    findings.extend(check_forbid(&files));

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Report { findings, files_scanned: files.len() })
}

/// All `.rs` files under `root`, as (root-relative `/`-separated path,
/// absolute path), sorted. Skips `target/`, `vendor/` (shim crates are
/// not ours to lint), dot-directories, and the lint fixture corpus
/// (fixture trees are linted by pointing `lint_root` *at* them).
fn collect_rs_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    let mut stack: Vec<(String, PathBuf)> = vec![(String::new(), root.to_path_buf())];
    while let Some((rel, dir)) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("{}: read_dir failed: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let child_rel = if rel.is_empty() { name.clone() } else { format!("{rel}/{name}") };
            let path = entry.path();
            if path.is_dir() {
                if name == "target"
                    || name == "vendor"
                    || name.starts_with('.')
                    || child_rel == "crates/lint/tests/fixtures"
                {
                    continue;
                }
                stack.push((child_rel, path));
            } else if name.ends_with(".rs") {
                out.push((child_rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Root-relative display path of a rule's allowlist file.
fn allowlist_rel(rule: Rule) -> String {
    format!("lint/{}", rule.allowlist_file().expect("rule with allowlist"))
}

fn load_entries(root: &Path, rule: Rule, header: &str) -> Result<Vec<Entry>, String> {
    let Some(name) = rule.allowlist_file() else { return Ok(Vec::new()) };
    let path = root.join("lint").join(name);
    match fs::read_to_string(&path) {
        Ok(s) => allow::parse_entries(&path, &s, header),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("{}: read failed: {e}", path.display())),
    }
}

/// Filter `batch` through an allowlist; unmatched entries (or entries
/// with the wrong match count) become `LINT` findings at the entry's
/// own line, so allowlists cannot rot.
fn apply_allowlist(
    batch: Vec<Finding>,
    entries: &[Entry],
    files: &BTreeMap<String, ScannedFile>,
    rule: Rule,
) -> Vec<Finding> {
    let mut matched = vec![0usize; entries.len()];
    let mut kept = Vec::new();
    'findings: for f in batch {
        for (i, e) in entries.iter().enumerate() {
            if e.file == f.file {
                let raw = files.get(&f.file).map_or("", |sf| sf.raw_line(f.line));
                if raw.contains(&e.context) {
                    matched[i] += 1;
                    continue 'findings;
                }
            }
        }
        kept.push(f);
    }
    kept.extend(staleness(entries, &matched, rule));
    kept
}

/// Staleness findings for entries whose match counts are off.
fn staleness(entries: &[Entry], matched: &[usize], rule: Rule) -> Vec<Finding> {
    let mut out = Vec::new();
    for (e, &n) in entries.iter().zip(matched) {
        let msg = if n == 0 {
            format!(
                "stale {} entry: no current {} site matches file {:?} context {:?}",
                allowlist_rel(rule),
                rule.id(),
                e.file,
                e.context
            )
        } else if e.count.is_some_and(|want| want != n) {
            format!(
                "{} entry for {:?} matches {n} site(s), `count` says {}",
                allowlist_rel(rule),
                e.context,
                e.count.unwrap_or(0)
            )
        } else {
            continue;
        };
        out.push(Finding {
            rule: Rule::Config,
            file: allowlist_rel(rule),
            line: e.defined_at,
            msg,
        });
    }
    out
}

/// R3b: match every `unsafe` site against `lint/unsafe_inventory.toml`.
/// Unregistered sites and stale/miscounted entries are both findings.
fn check_inventory(
    root: &Path,
    files: &BTreeMap<String, ScannedFile>,
) -> Result<Vec<Finding>, String> {
    let entries = load_entries(root, Rule::UnsafeInventory, "site")?;
    let mut matched = vec![0usize; entries.len()];
    let mut out = Vec::new();
    for f in files.values() {
        'sites: for line in rules::unsafe_sites(f) {
            for (i, e) in entries.iter().enumerate() {
                if e.file == f.rel && f.raw_line(line).contains(&e.context) {
                    matched[i] += 1;
                    continue 'sites;
                }
            }
            out.push(Finding {
                rule: Rule::UnsafeInventory,
                file: f.rel.clone(),
                line,
                msg: "unsafe site not registered in lint/unsafe_inventory.toml".to_string(),
            });
        }
    }
    out.extend(staleness(&entries, &matched, Rule::UnsafeInventory));
    Ok(out)
}

/// R3c: a crate whose `src/` has zero unsafe sites must declare
/// `#![forbid(unsafe_code)]` in its `src/lib.rs`, so unsafe cannot
/// creep in silently (source-level forbid outrules the workspace-level
/// `unsafe_code = "allow"`).
fn check_forbid(files: &BTreeMap<String, ScannedFile>) -> Vec<Finding> {
    // crate dir prefix ("" for the root facade) -> unsafe site count in src/.
    let mut unsafe_in_src: BTreeMap<String, usize> = BTreeMap::new();
    for f in files.values() {
        let Some((dir, is_src)) = crate_of(&f.rel) else { continue };
        if is_src {
            *unsafe_in_src.entry(dir).or_insert(0) += rules::unsafe_sites(f).len();
        }
    }
    let mut out = Vec::new();
    for (dir, count) in &unsafe_in_src {
        let lib =
            if dir.is_empty() { "src/lib.rs".to_string() } else { format!("{dir}/src/lib.rs") };
        let Some(lib_file) = files.get(&lib) else { continue };
        if *count == 0 && !lib_file.code.contains("#![forbid(unsafe_code)]") {
            out.push(Finding {
                rule: Rule::UnsafeInventory,
                file: lib,
                line: 1,
                msg: "crate has no unsafe code but src/lib.rs lacks #![forbid(unsafe_code)]"
                    .to_string(),
            });
        }
    }
    out
}

/// (crate directory prefix, is-under-`src/`) for a scanned path.
fn crate_of(rel: &str) -> Option<(String, bool)> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let name = rest.split('/').next()?;
        let dir = format!("crates/{name}");
        let is_src = rel.starts_with(&format!("{dir}/src/"));
        Some((dir, is_src))
    } else if rel.starts_with("src/") {
        Some((String::new(), true))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_classifies_paths() {
        assert_eq!(crate_of("crates/kb/src/lib.rs"), Some(("crates/kb".into(), true)));
        assert_eq!(crate_of("crates/kb/tests/t.rs"), Some(("crates/kb".into(), false)));
        assert_eq!(crate_of("src/lib.rs"), Some((String::new(), true)));
        assert_eq!(crate_of("build.rs"), None);
    }

    #[test]
    fn staleness_reports_zero_and_miscounted_entries() {
        let entries = vec![
            Entry {
                file: "a.rs".into(),
                context: "gone".into(),
                reason: "r".into(),
                count: None,
                defined_at: 3,
            },
            Entry {
                file: "b.rs".into(),
                context: "twice".into(),
                reason: "r".into(),
                count: Some(2),
                defined_at: 8,
            },
        ];
        let out = staleness(&entries, &[0, 1], Rule::Determinism);
        assert_eq!(out.len(), 2);
        assert!(out[0].msg.contains("stale"), "{}", out[0].msg);
        assert_eq!(out[0].file, "lint/r4_determinism.toml");
        assert_eq!(out[0].line, 3);
        assert!(out[1].msg.contains("`count` says 2"), "{}", out[1].msg);
        let clean = staleness(&entries, &[1, 2], Rule::Determinism);
        assert!(clean.is_empty());
    }
}
