//! `jocl-lint` — run the workspace invariant checker.
//!
//! ```text
//! cargo run -p jocl-lint -- --deny            # gate: exit 1 on any finding
//! cargo run -p jocl-lint --                   # advisory: print, exit 0
//! cargo run -p jocl-lint -- --explain R4      # rule contract + fix hint
//! cargo run -p jocl-lint -- --root <dir>      # lint another tree (fixtures)
//! ```
//!
//! Exit codes: 0 clean (or advisory), 1 findings under `--deny`,
//! 2 usage / configuration error (malformed allowlist, I/O failure).

use jocl_lint::{lint_root, Rule, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: jocl-lint [--deny] [--root <dir>] [--explain <rule>|all]\n\
    rules: R1 env-confinement, R2 poison-recovery, R3 unsafe-inventory,\n\
           R4 determinism, R5 one-serialization-path, LINT lint-config";

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut explain: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage_error("--root needs a directory"),
            },
            "--explain" => match args.next() {
                Some(r) => explain = Some(r),
                None => return usage_error("--explain needs a rule id or name"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(query) = explain {
        return explain_rules(&query);
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("jocl-lint: no workspace root found (run from the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    match lint_root(&root) {
        Err(e) => {
            eprintln!("jocl-lint: configuration error: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
                println!("    fix: {}", f.rule.hint());
            }
            let n = report.findings.len();
            println!(
                "jocl-lint: {n} finding(s) in {} file(s) under {}{}",
                report.files_scanned,
                root.display(),
                if n > 0 && !deny { " (advisory; --deny to gate)" } else { "" }
            );
            if n > 0 && deny {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("jocl-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn explain_rules(query: &str) -> ExitCode {
    let rules: Vec<Rule> = if query.eq_ignore_ascii_case("all") {
        ALL_RULES.to_vec()
    } else {
        match Rule::from_query(query) {
            Some(r) => vec![r],
            None => return usage_error(&format!("unknown rule {query:?}")),
        }
    };
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            println!();
        }
        println!("{} {}", r.id(), r.name());
        println!("  {}", r.explain());
        println!("  fix: {}", r.hint());
        if let Some(f) = r.allowlist_file() {
            println!("  allowlist: lint/{f}");
        }
    }
    ExitCode::SUCCESS
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`; fall back to the compile-time checkout.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(PathBuf::from);
    }
    let baked = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    baked.canonicalize().ok().filter(|p| p.join("Cargo.toml").is_file())
}
