//! Checked-in allowlists: every tolerated violation is an explicit,
//! reviewable diff under `lint/` instead of silent drift.
//!
//! The files are a deliberately tiny TOML subset (the offline
//! dependency set has no `toml` crate): `[[allow]]` / `[[site]]` entry
//! headers followed by `key = "string"` / `key = integer` lines, plus
//! `#` comments. Anything else is a hard configuration error — a
//! malformed allowlist must fail the run, not silently allow nothing.
//!
//! An entry pins a site by `file` (root-relative path) and `context`
//! (a substring of the raw source line), **not** by line number, so
//! unrelated edits do not invalidate it. `count` (optional) asserts how
//! many sites the entry is expected to match: a copy-pasted new
//! violation under an old entry fails the run instead of riding along.
//!
//! Staleness is enforced by the runner: an entry matching zero findings
//! (or the wrong count) is itself reported as a violation.

use std::path::Path;

/// One allowlist / inventory entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Root-relative path the entry applies to.
    pub file: String,
    /// Substring of the raw source line at the site.
    pub context: String,
    /// Why this site is allowed (mandatory: allowlists document intent).
    pub reason: String,
    /// Exact number of sites the entry must match (`None` = at least 1).
    pub count: Option<usize>,
    /// 1-indexed line of the entry header in its allowlist file.
    pub defined_at: usize,
}

/// Parse one allowlist file. `header` is the expected entry header
/// (`allow` or `site`). Returns entries or a description of the first
/// syntax error.
pub fn parse_entries(path: &Path, source: &str, header: &str) -> Result<Vec<Entry>, String> {
    let mut entries: Vec<Entry> = Vec::new();
    let mut open = false;
    let err =
        |line_no: usize, msg: &str| -> String { format!("{}:{line_no}: {msg}", path.display()) };
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == format!("[[{header}]]") {
            entries.push(Entry {
                file: String::new(),
                context: String::new(),
                reason: String::new(),
                count: None,
                defined_at: line_no,
            });
            open = true;
            continue;
        }
        if line.starts_with("[[") {
            return Err(err(line_no, &format!("expected [[{header}]] entries, got {line}")));
        }
        if !open {
            return Err(err(line_no, &format!("key outside an [[{header}]] entry")));
        }
        let (key, value) =
            line.split_once('=').ok_or_else(|| err(line_no, "expected `key = value`"))?;
        let (key, value) = (key.trim(), value.trim());
        let entry = entries.last_mut().expect("open entry");
        match key {
            "file" | "context" | "reason" | "note" => {
                let s = parse_string(value).ok_or_else(|| {
                    err(line_no, &format!("{key} must be a double-quoted string"))
                })?;
                match key {
                    "file" => entry.file = s,
                    "context" => entry.context = s,
                    _ => entry.reason = s,
                }
            }
            "count" => {
                entry.count = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| err(line_no, "count must be a non-negative integer"))?,
                );
            }
            _ => return Err(err(line_no, &format!("unknown key {key:?}"))),
        }
    }
    for e in &entries {
        if e.file.is_empty() || e.context.is_empty() {
            return Err(err(e.defined_at, "entry needs both `file` and `context`"));
        }
        if e.reason.is_empty() {
            return Err(err(
                e.defined_at,
                "entry needs a `reason` (allow) or `note` (site) documenting why",
            ));
        }
    }
    Ok(entries)
}

/// Parse a double-quoted TOML basic string supporting `\"`, `\\`, `\n`,
/// `\t` escapes (the subset the allowlists need).
fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return None; // unescaped quote: the suffix strip grabbed a middle quote
        }
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn p() -> PathBuf {
        PathBuf::from("lint/test.toml")
    }

    #[test]
    fn parses_entries_with_escapes_and_counts() {
        let src = r#"
# a comment
[[allow]]
file = "crates/kb/src/side.rs"
context = ".values()"
count = 2
reason = "order-insensitive \"sum\""
"#;
        let entries = parse_entries(&p(), src, "allow").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].file, "crates/kb/src/side.rs");
        assert_eq!(entries[0].context, ".values()");
        assert_eq!(entries[0].count, Some(2));
        assert_eq!(entries[0].reason, "order-insensitive \"sum\"");
    }

    #[test]
    fn rejects_malformed_files() {
        for (src, what) in [
            ("file = \"x\"\n", "key outside"),
            ("[[allow]]\nfile = x\n", "double-quoted"),
            ("[[allow]]\nfile = \"x\"\ncontext = \"y\"\n", "reason"),
            ("[[allow]]\nfrob = \"x\"\n", "unknown key"),
            ("[[site]]\n", "expected [[allow]]"),
            ("[[allow]]\nfile = \"x\"\ncontext = \"y\"\nreason = \"z\"\ncount = -1\n", "count"),
        ] {
            let e = parse_entries(&p(), src, "allow").unwrap_err();
            assert!(e.contains(what), "{src:?} -> {e}");
        }
    }

    #[test]
    fn site_header_for_inventory() {
        let src = "[[site]]\nfile = \"a.rs\"\ncontext = \"unsafe impl\"\nnote = \"why\"\n";
        let entries = parse_entries(&p(), src, "site").unwrap();
        assert_eq!(entries[0].reason, "why");
    }
}
