//! A lightweight Rust *source* lexer — just enough token discipline to
//! tell code from comments from string literals, without pulling in
//! `syn` (the offline dependency set has no registry access, and the
//! rules only need lexical context anyway).
//!
//! For every input line the scan produces three parallel views:
//!
//! * **code** — the line with comments removed and string/char literal
//!   *contents* blanked (the delimiters survive so expressions keep
//!   their shape). Rule patterns match against this view, so a lint
//!   token inside a comment or a string can never trip a code rule.
//! * **strings** — the raw contents of every string literal fragment on
//!   the line (a multi-line literal contributes one fragment per line).
//!   The wire-literal rule matches against these, so a `"link.v1"`
//!   hiding in a doc comment stays invisible to it.
//! * **comment** — the comment text on the line (line, block and doc
//!   comments alike), which is where `// SAFETY:` justifications live.
//!
//! Handled syntax: line comments, nested block comments, plain /
//! byte / raw (`r"…"`, `r#"…"#`, `br#"…"#`) strings with escapes, char
//! literals (including `'\''`) vs lifetimes (`'a`).

/// One scanned source line (1-indexed via its position in [`ScannedFile::lines`]).
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Original source text (used for allowlist `context` matching).
    pub raw: String,
    /// Comment-free, string-blanked view.
    pub code: String,
    /// String-literal fragments on this line.
    pub strings: Vec<String>,
    /// Comment text on this line.
    pub comment: String,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Path relative to the scanned root, `/`-separated.
    pub rel: String,
    pub lines: Vec<Line>,
    /// All `code` views joined with `\n` (patterns that rustfmt may
    /// split across lines match against this).
    pub code: String,
    /// Byte offset in [`ScannedFile::code`] where each line starts.
    line_starts: Vec<usize>,
}

impl ScannedFile {
    /// 1-indexed line number containing byte offset `at` of [`ScannedFile::code`].
    pub fn line_of(&self, at: usize) -> usize {
        match self.line_starts.binary_search(&at) {
            Ok(i) => i + 1,
            Err(i) => i, // insertion point i means line i (1-indexed i-1+1)
        }
    }

    /// The `code` view of 1-indexed line `n` (empty for out-of-range).
    pub fn code_line(&self, n: usize) -> &str {
        self.lines.get(n.wrapping_sub(1)).map_or("", |l| l.code.as_str())
    }

    /// The comment text of 1-indexed line `n`.
    pub fn comment_line(&self, n: usize) -> &str {
        self.lines.get(n.wrapping_sub(1)).map_or("", |l| l.comment.as_str())
    }

    /// The raw text of 1-indexed line `n`.
    pub fn raw_line(&self, n: usize) -> &str {
        self.lines.get(n.wrapping_sub(1)).map_or("", |l| l.raw.as_str())
    }

    /// First 1-indexed line whose code contains `#[cfg(test)]`, if any.
    /// Findings at or after it are treated as test code (the repo
    /// convention keeps test modules at the end of a file).
    pub fn cfg_test_line(&self) -> Option<usize> {
        self.lines.iter().position(|l| l.code.contains("#[cfg(test)]")).map(|i| i + 1)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    /// Inside `"…"`; the flag tracks a pending `\` escape.
    Str {
        escaped: bool,
    },
    /// Inside `r##"…"##` with the given `#` count.
    RawStr(u32),
    /// Inside `'…'`; the flag tracks a pending `\` escape.
    Char {
        escaped: bool,
    },
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scan one file into per-line code/strings/comment views.
pub fn scan_source(rel: &str, source: &str) -> ScannedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut cur_string = String::new();
    let mut in_string_fragment = false;
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! end_fragment {
        () => {
            if in_string_fragment {
                cur.strings.push(std::mem::take(&mut cur_string));
                in_string_fragment = false;
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A literal or comment spanning the newline contributes a
            // fragment per line; the newline itself always reaches the
            // code view so flattened offsets stay line-aligned.
            end_fragment!();
            lines.push(std::mem::take(&mut cur));
            if state == State::LineComment {
                state = State::Code;
            }
            if matches!(state, State::Str { .. } | State::RawStr(_) | State::Char { .. }) {
                in_string_fragment = true; // the literal continues on the next line
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                let prev_ident = i > 0 && (is_ident(chars[i - 1]) || chars[i - 1] == '"');
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    cur.code.push(' ');
                    cur.code.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    cur.code.push(' ');
                    cur.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    state = State::Str { escaped: false };
                    in_string_fragment = true;
                    cur.code.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw/byte string start: r" r#" b" br#" …
                    let mut j = i;
                    if c == 'b' && chars.get(j + 1) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    let mut k = j + 1;
                    while chars.get(k) == Some(&'#') {
                        hashes += 1;
                        k += 1;
                    }
                    let raw_form = c == 'r' || chars.get(i + 1) == Some(&'r');
                    if chars.get(k) == Some(&'"') && (raw_form || k == i + 1) {
                        cur.code.extend(&chars[i..=k]); // keep prefix + quote
                        state = if raw_form {
                            State::RawStr(hashes)
                        } else {
                            State::Str { escaped: false }
                        };
                        in_string_fragment = true;
                        i = k + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' && !prev_ident {
                    // Char literal vs lifetime.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(n) if is_ident(n) => chars.get(i + 2) == Some(&'\''),
                        Some(_) => true, // e.g. '(' … always a char start
                        None => false,
                    };
                    if is_char {
                        state = State::Char { escaped: false };
                        in_string_fragment = true;
                        cur.code.push('\'');
                    } else {
                        cur.code.push('\''); // lifetime tick stays code
                    }
                    i += 1;
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                cur.code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    cur.code.push(' ');
                    cur.code.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    cur.comment.push(c);
                    cur.comment.push('*');
                    cur.code.push(' ');
                    cur.code.push(' ');
                    i += 2;
                } else {
                    cur.comment.push(c);
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::Str { escaped } => {
                if escaped {
                    state = State::Str { escaped: false };
                    cur_string.push(c);
                    cur.code.push(' ');
                } else if c == '\\' {
                    state = State::Str { escaped: true };
                    cur_string.push(c);
                    cur.code.push(' ');
                } else if c == '"' {
                    state = State::Code;
                    end_fragment!();
                    cur.code.push('"');
                } else {
                    cur_string.push(c);
                    cur.code.push(' ');
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes as usize {
                        if chars.get(i + 1 + h) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        state = State::Code;
                        end_fragment!();
                        cur.code.push('"');
                        for _ in 0..hashes {
                            cur.code.push('#');
                        }
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                cur_string.push(c);
                cur.code.push(' ');
                i += 1;
            }
            State::Char { escaped } => {
                if escaped {
                    state = State::Char { escaped: false };
                    cur_string.push(c);
                    cur.code.push(' ');
                } else if c == '\\' {
                    state = State::Char { escaped: true };
                    cur_string.push(c);
                    cur.code.push(' ');
                } else if c == '\'' {
                    state = State::Code;
                    end_fragment!();
                    cur.code.push('\'');
                } else {
                    cur_string.push(c);
                    cur.code.push(' ');
                }
                i += 1;
            }
        }
    }
    if in_string_fragment {
        cur.strings.push(cur_string); // unterminated literal at EOF
    }
    lines.push(cur);

    // Attach the raw text per line (cheap second pass; `lines()` drops a
    // trailing empty line exactly like the state machine above keeps it,
    // so zip defensively).
    for (line, raw) in lines.iter_mut().zip(source.split('\n')) {
        line.raw = raw.to_string();
    }

    let mut code = String::new();
    let mut line_starts = Vec::with_capacity(lines.len());
    for (i, l) in lines.iter().enumerate() {
        line_starts.push(code.len());
        code.push_str(&l.code);
        if i + 1 != lines.len() {
            code.push('\n');
        }
    }
    ScannedFile { rel: rel.to_string(), lines, code, line_starts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let src = "let x = \"JOCL_SCALE\"; // SAFETY: not really\nlet y = 'a';\n";
        let f = scan_source("t.rs", src);
        assert!(f.lines[0].code.contains("let x = \"          \";"), "{:?}", f.lines[0].code);
        assert_eq!(f.lines[0].strings, vec!["JOCL_SCALE".to_string()]);
        assert!(f.lines[0].comment.contains("SAFETY:"));
        assert_eq!(f.lines[1].strings, vec!["a".to_string()]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan_source("t.rs", "fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(f.lines[0].strings.is_empty(), "{:?}", f.lines[0].strings);
        assert!(f.lines[0].code.contains("fn f<'a>"));
    }

    #[test]
    fn raw_and_escaped_strings() {
        let src =
            "let a = r#\"OK \"quoted\"\"#;\nlet b = \"escaped \\\" quote\";\nlet c = b\"bytes\";\n";
        let f = scan_source("t.rs", src);
        assert_eq!(f.lines[0].strings, vec!["OK \"quoted\"".to_string()]);
        assert_eq!(f.lines[1].strings, vec!["escaped \\\" quote".to_string()]);
        assert_eq!(f.lines[2].strings, vec!["bytes".to_string()]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let f = scan_source("t.rs", src);
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(!f.lines[0].code.contains("inner"));
        assert!(f.lines[0].comment.contains("inner"));
    }

    #[test]
    fn multi_line_strings_fragment_per_line() {
        let src = "let s = \"first\nsecond JOCL_X\";\nlet t = 1;\n";
        let f = scan_source("t.rs", src);
        assert_eq!(f.lines[0].strings, vec!["first".to_string()]);
        assert_eq!(f.lines[1].strings, vec!["second JOCL_X".to_string()]);
        assert!(f.lines[2].code.contains("let t = 1;"));
    }

    #[test]
    fn line_of_maps_flat_offsets() {
        let f = scan_source("t.rs", "abc\ndef\nghi\n");
        let at = f.code.find("def").unwrap();
        assert_eq!(f.line_of(at), 2);
        let at = f.code.find("ghi").unwrap();
        assert_eq!(f.line_of(at), 3);
    }

    #[test]
    fn char_with_escaped_quote() {
        let f = scan_source("t.rs", "let q = '\\''; let r = '\\\\';\n");
        assert_eq!(f.lines[0].strings, vec!["\\'".to_string(), "\\\\".to_string()]);
    }
}
