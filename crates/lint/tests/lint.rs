//! Rule coverage against the fixture corpus — at least one violating
//! and one conforming sample per rule family — plus the
//! allowlist-staleness contract and a live run over the real workspace
//! (the same gate CI's `lint` job enforces through the bin).

use jocl_lint::{lint_root, Finding, Rule};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

fn render(findings: &[Finding]) -> String {
    findings.iter().map(|f| format!("  {f}\n")).collect()
}

#[test]
fn bad_fixture_trips_every_rule() {
    let report = lint_root(&fixture("bad")).expect("bad fixture lints");
    let has = |rule: Rule, file: &str, line: usize| {
        report.findings.iter().any(|f| f.rule == rule && f.file == file && f.line == line)
    };
    let all = render(&report.findings);
    assert!(has(Rule::EnvConfinement, "crates/demo/src/lib.rs", 5), "R1 missing:\n{all}");
    assert!(has(Rule::PoisonRecovery, "crates/demo/src/lib.rs", 9), "R2 missing:\n{all}");
    // The unsafe line earns two R3 findings: no SAFETY comment AND not
    // registered in the (absent) inventory.
    let r3: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::UnsafeInventory && f.file == "crates/demo/src/lib.rs")
        .collect();
    assert_eq!(r3.len(), 2, "expected SAFETY + inventory findings:\n{all}");
    assert!(r3.iter().all(|f| f.line == 13), "both anchor the unsafe line:\n{all}");
    assert!(has(Rule::Determinism, "crates/kb/src/side.rs", 8), "R4 missing:\n{all}");
    assert!(has(Rule::WirePath, "crates/demo/src/wire.rs", 5), "R5 missing:\n{all}");
    assert_eq!(report.findings.len(), 6, "exactly the seeded violations:\n{all}");
}

#[test]
fn clean_fixture_is_quiet() {
    let report = lint_root(&fixture("clean")).expect("clean fixture lints");
    assert!(
        report.findings.is_empty(),
        "conforming samples must not be flagged:\n{}",
        render(&report.findings)
    );
    assert!(report.files_scanned >= 5, "all fixture files scanned");
}

#[test]
fn stale_allowlist_entries_fail_the_run() {
    let report = lint_root(&fixture("stale")).expect("stale fixture lints");
    let all = render(&report.findings);
    assert_eq!(report.findings.len(), 2, "both rotted entries reported:\n{all}");
    assert!(
        report.findings.iter().all(|f| f.rule == Rule::Config && f.file == "lint/r2_locks.toml"),
        "findings anchor the allowlist file itself:\n{all}"
    );
    assert!(
        report.findings.iter().any(|f| f.msg.contains("`count` says 2")),
        "miscount reported:\n{all}"
    );
    assert!(report.findings.iter().any(|f| f.msg.contains("stale")), "rot reported:\n{all}");
    // The allowlisted violation itself is suppressed — the only noise
    // is the allowlist rot.
    assert!(
        !report.findings.iter().any(|f| f.rule == Rule::PoisonRecovery),
        "matched entry suppresses its finding:\n{all}"
    );
}

#[test]
fn malformed_allowlist_is_a_hard_error() {
    let dir = std::env::temp_dir().join(format!("jocl-lint-bad-toml-{}", std::process::id()));
    let lint_dir = dir.join("lint");
    std::fs::create_dir_all(&lint_dir).unwrap();
    std::fs::write(lint_dir.join("r1_env.toml"), "[[allow]]\nfile = unquoted\n").unwrap();
    let err = lint_root(&dir).expect_err("malformed allowlist must fail the run");
    assert!(err.contains("double-quoted"), "syntax error surfaced: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The live gate: the real workspace must lint clean. This runs in the
/// ordinary test matrix (not `--ignored`), so re-introducing a raw
/// `JOCL_*` read, a lock unwrap, an undocumented unsafe site, or a
/// stray wire literal fails `cargo test` even before the CI lint job.
#[test]
fn real_workspace_is_clean() {
    let report = lint_root(&workspace_root()).expect("workspace lints");
    assert!(
        report.findings.is_empty(),
        "the workspace must satisfy its own invariants:\n{}",
        render(&report.findings)
    );
    assert!(report.files_scanned > 50, "the whole workspace was scanned");
}
