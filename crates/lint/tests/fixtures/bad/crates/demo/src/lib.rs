//! Fixture: one true positive per code rule (R1, R2, R3) — every line
//! below must be flagged when `lint_root` points at this tree.

pub fn scale() -> f64 {
    std::env::var("JOCL_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.02)
}

pub fn counter(m: &std::sync::Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}

pub fn spicy(p: *const u64) -> u64 {
    unsafe { *p }
}
