//! Fixture: an R5 true positive — a wire-frame literal outside the
//! serialization path.

pub fn frame(n: usize) -> String {
    format!("OK {n}")
}
