//! Fixture: an R4 true positive — hash-map iteration in a designated
//! serialization module with no adjacent sort and no allowlist entry.

use std::collections::HashMap;

pub fn snapshot(rows: &HashMap<u32, u64>) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    for (&k, &v) in rows {
        out.push((k, v));
    }
    out
}
