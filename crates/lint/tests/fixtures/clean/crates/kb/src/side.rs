//! Fixture: conforming R4 samples in a designated module — a
//! sort-adjacent iteration, and an order-insensitive sum covered by an
//! allowlist entry in `lint/r4_determinism.toml`.

use std::collections::HashMap;

pub fn snapshot(rows: &HashMap<u32, u64>) -> Vec<(u32, u64)> {
    let mut out: Vec<(u32, u64)> = rows.iter().map(|(&k, &v)| (k, v)).collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

pub fn total(rows: &HashMap<u32, u64>) -> u64 {
    rows.values().sum()
}
