//! Fixture: the one file allowed to touch `JOCL_*` env knobs.

pub fn env_scale() -> f64 {
    std::env::var("JOCL_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.02)
}
