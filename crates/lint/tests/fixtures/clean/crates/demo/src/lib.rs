#![forbid(unsafe_code)]
//! Fixture: conforming counterparts — a non-JOCL env read, a
//! poison-recovering lock, test-only unwraps, and the forbid
//! declaration an unsafe-free crate must carry.

pub fn scale() -> f64 {
    std::env::var("DEMO_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.02)
}

pub fn counter(m: &std::sync::Mutex<u64>) -> u64 {
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_locks() {
        let m = std::sync::Mutex::new(1u64);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
