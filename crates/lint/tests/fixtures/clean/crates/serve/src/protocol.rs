//! Fixture: wire-frame literals are fine *here* — this path is the one
//! serialization home R5 confines them to.

pub fn frame(n: usize) -> String {
    format!("OK {n}")
}

pub fn err(msg: &str) -> String {
    format!("ERR parse {msg}")
}
