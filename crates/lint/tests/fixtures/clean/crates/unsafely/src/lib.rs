//! Fixture: a crate that legitimately needs `unsafe` — the site carries
//! a SAFETY comment and is registered in `lint/unsafe_inventory.toml`.

pub fn first(xs: &[u64]) -> u64 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees the slice is non-empty, so
    // index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}
