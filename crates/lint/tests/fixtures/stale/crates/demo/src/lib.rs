#![forbid(unsafe_code)]
//! Fixture: the lock unwrap below is allowlisted, but the allowlist
//! also carries a rotted entry and a miscounted one — both must fail
//! the run as LINT findings.

pub fn counter(m: &std::sync::Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}
