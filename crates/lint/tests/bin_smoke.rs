//! End-to-end smoke of the `jocl-lint` bin (the satellite requirement):
//! `--deny` exits 0 on the real tree, non-zero on a violating tree, and
//! `--explain` renders each rule's contract.
//!
//! Guarded behind `--ignored` like the other bin smokes:
//!
//! ```text
//! cargo test -p jocl-lint --test bin_smoke -- --ignored
//! ```

use std::path::Path;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_jocl-lint");

fn run(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(BIN).args(args).output().expect("spawn jocl-lint");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
#[ignore = "drives the compiled bin on the whole workspace; run with -- --ignored"]
fn deny_gates_the_workspace_and_fixtures() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.to_str().expect("utf8 path");
    let (code, stdout, stderr) = run(&["--deny", "--root", root]);
    assert_eq!(code, Some(0), "clean tree gates green\nstdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");

    let bad = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad");
    let bad = bad.to_str().expect("utf8 path");
    let (code, stdout, _) = run(&["--deny", "--root", bad]);
    assert_eq!(code, Some(1), "violations gate red under --deny\n{stdout}");
    for needle in [
        "[R1 env-confinement]",
        "[R2 poison-recovery]",
        "[R3 unsafe-inventory]",
        "[R4 determinism]",
        "[R5 one-serialization-path]",
        "fix:",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }

    // Without --deny the same findings are advisory: printed, exit 0.
    let (code, stdout, _) = run(&["--root", bad]);
    assert_eq!(code, Some(0), "advisory mode never gates\n{stdout}");
    assert!(stdout.contains("advisory"), "{stdout}");
}

#[test]
#[ignore = "drives the compiled bin; run with -- --ignored"]
fn explain_renders_rule_contracts() {
    let (code, stdout, _) = run(&["--explain", "R4"]);
    assert_eq!(code, Some(0));
    assert!(
        stdout.contains("determinism") && stdout.contains("lint/r4_determinism.toml"),
        "{stdout}"
    );

    let (code, stdout, _) = run(&["--explain", "all"]);
    assert_eq!(code, Some(0));
    for id in ["R1", "R2", "R3", "R4", "R5", "LINT"] {
        assert!(stdout.contains(&format!("{id} ")), "missing {id} in:\n{stdout}");
    }

    let (code, _, stderr) = run(&["--explain", "bogus"]);
    assert_eq!(code, Some(2), "unknown rule is a usage error");
    assert!(stderr.contains("unknown rule"), "{stderr}");
}
