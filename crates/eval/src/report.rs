//! ASCII rendering of experiment results.
//!
//! The `jocl-bench` binaries print each of the paper's tables and figures
//! to stdout; this module supplies the [`Table`] and [`BarChart`]
//! renderers they share. Output is plain text so runs can be diffed and
//! archived in `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// A simple left-aligned-first-column, right-aligned-numbers table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of pre-formatted cells.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of a label followed by `values` formatted to 3 decimal
    /// places (the paper's precision).
    pub fn row_scores(&mut self, label: &str, values: &[f64]) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.row(&cells)
    }

    /// Number of data rows so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let sep: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!(" {c:<width$} ", width = widths[i])
                    } else {
                        format!(" {c:>width$} ", width = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }
}

/// A horizontal ASCII bar chart (used for Figure 3 / Figure 4).
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    bars: Vec<(String, f64)>,
    max_value: f64,
}

impl BarChart {
    /// Create a chart; `max_value` sets the full-width scale (e.g. 1.0 for
    /// accuracies).
    pub fn new(title: impl Into<String>, max_value: f64) -> Self {
        assert!(max_value > 0.0, "max_value must be positive");
        Self { title: title.into(), bars: Vec::new(), max_value }
    }

    /// Add one labeled bar. Values are clamped to `[0, max_value]`.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.bars.push((label.into(), value.clamp(0.0, self.max_value)));
        self
    }

    /// Render with a 50-character bar area.
    pub fn render(&self) -> String {
        const WIDTH: usize = 50;
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        for (label, value) in &self.bars {
            let filled = ((value / self.max_value) * WIDTH as f64).round() as usize;
            let _ = writeln!(
                out,
                " {label:<label_w$} | {}{} {value:.3}",
                "#".repeat(filled),
                " ".repeat(WIDTH - filled),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_rows() {
        let mut t = Table::new("Demo", &["Method", "F1"]);
        t.row_scores("JOCL", &[0.818]);
        t.row_scores("SIST", &[0.801]);
        let s = t.render();
        assert!(s.contains("JOCL"));
        assert!(s.contains("0.818"));
        assert!(s.contains("SIST"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn table_alignment_padding() {
        let mut t = Table::new("T", &["A", "LongHeader"]);
        t.row(&["x".into(), "1".into()]);
        let s = t.render();
        // Header width respected: the value column is padded to 10.
        assert!(s.lines().count() >= 3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("T", &["A", "B"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn bar_chart_scales_and_clamps() {
        let mut c = BarChart::new("Accuracies", 1.0);
        c.bar("JOCL", 0.761);
        c.bar("overflow", 2.0);
        let s = c.render();
        assert!(s.contains("JOCL"));
        assert!(s.contains("0.761"));
        assert!(s.contains("1.000")); // clamped
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        BarChart::new("bad", 0.0);
    }

    #[test]
    fn empty_chart_renders_title_only() {
        let c = BarChart::new("Empty", 1.0);
        let s = c.render();
        assert!(s.starts_with("== Empty =="));
        assert_eq!(s.lines().count(), 1);
    }
}
