//! Linking accuracy (paper §4.1).
//!
//! > "For the evaluation measure of OKB linking, we adopt accuracy which is
//! > a common measure for entity linking systems and calculated as the
//! > number of correctly linked NPs (RPs) divided by the total number of
//! > all NPs (RPs)."
//!
//! Gold targets may be absent for some mentions (NYTimes2018 labels only a
//! sample); unlabeled mentions are excluded from the denominator, matching
//! the paper's sampled-ground-truth protocol.

/// Accuracy result with raw counts for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkingScore {
    /// Mentions with a gold target.
    pub total: usize,
    /// Mentions whose prediction equals the gold target.
    pub correct: usize,
}

impl LinkingScore {
    /// Accuracy in `[0, 1]`; 0 when nothing is labeled.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Abstention-aware linking quality: precision, recall and F1 over the
/// labeled mentions. Accuracy treats an abstained (`None`) prediction
/// and a wrong one identically; serving a `link` endpoint they are very
/// different failure modes, so the link gate reports all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkPrf {
    /// Labeled mentions predicted with the gold target.
    pub tp: usize,
    /// Labeled mentions predicted with a *wrong* target.
    pub fp: usize,
    /// Labeled mentions missed: wrong target or abstained.
    pub fn_: usize,
}

impl LinkPrf {
    /// `tp / (tp + fp)` — of the links asserted, how many were right.
    /// 0 when nothing was asserted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// `tp / (tp + fn)` — of the gold links, how many were found.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Precision/recall/F1 against gold, under the same sampled-ground-truth
/// protocol as [`linking_accuracy`]: unlabeled (`None` gold) mentions
/// are excluded entirely. A wrong assertion costs both precision (fp)
/// and recall (fn); an abstention costs recall only.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn linking_prf<T: PartialEq>(predicted: &[Option<T>], gold: &[Option<T>]) -> LinkPrf {
    assert_eq!(
        predicted.len(),
        gold.len(),
        "predicted and gold link vectors must cover the same mentions"
    );
    let mut prf = LinkPrf { tp: 0, fp: 0, fn_: 0 };
    for (p, g) in predicted.iter().zip(gold) {
        let Some(g) = g else { continue };
        match p {
            Some(p) if p == g => prf.tp += 1,
            Some(_) => {
                prf.fp += 1;
                prf.fn_ += 1;
            }
            None => prf.fn_ += 1,
        }
    }
    prf
}

/// Compare predictions against gold. Both are per-mention optional targets
/// (`None` prediction = abstained / NIL; `None` gold = unlabeled).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn linking_accuracy<T: PartialEq>(predicted: &[Option<T>], gold: &[Option<T>]) -> LinkingScore {
    assert_eq!(
        predicted.len(),
        gold.len(),
        "predicted and gold link vectors must cover the same mentions"
    );
    let mut total = 0;
    let mut correct = 0;
    for (p, g) in predicted.iter().zip(gold) {
        if let Some(g) = g {
            total += 1;
            if p.as_ref() == Some(g) {
                correct += 1;
            }
        }
    }
    LinkingScore { total, correct }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect() {
        let g = vec![Some(1u32), Some(2), Some(3)];
        let s = linking_accuracy(&g, &g);
        assert_eq!(s.accuracy(), 1.0);
        assert_eq!(s.total, 3);
    }

    #[test]
    fn partial() {
        let p = vec![Some(1u32), Some(9), None];
        let g = vec![Some(1u32), Some(2), Some(3)];
        let s = linking_accuracy(&p, &g);
        assert_eq!(s.correct, 1);
        assert_eq!(s.total, 3);
        assert!((s.accuracy() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unlabeled_gold_is_excluded() {
        let p = vec![Some(1u32), Some(7)];
        let g = vec![Some(1u32), None];
        let s = linking_accuracy(&p, &g);
        assert_eq!(s.total, 1);
        assert_eq!(s.accuracy(), 1.0);
    }

    #[test]
    fn abstaining_on_labeled_counts_as_wrong() {
        let p: Vec<Option<u32>> = vec![None];
        let g = vec![Some(5u32)];
        assert_eq!(linking_accuracy(&p, &g).accuracy(), 0.0);
    }

    #[test]
    fn empty_is_zero() {
        let e: Vec<Option<u32>> = vec![];
        assert_eq!(linking_accuracy(&e, &e).accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "same mentions")]
    fn size_mismatch_panics() {
        let p = vec![Some(1u32)];
        let g: Vec<Option<u32>> = vec![];
        linking_accuracy(&p, &g);
    }

    #[test]
    fn prf_separates_wrong_from_abstained() {
        // gold: 4 labeled + 1 unlabeled; predictions: 2 right, 1 wrong,
        // 1 abstained, 1 asserted-on-unlabeled (ignored).
        let p = vec![Some(1u32), Some(2), Some(9), None, Some(7)];
        let g = vec![Some(1u32), Some(2), Some(3), Some(4), None];
        let prf = linking_prf(&p, &g);
        assert_eq!(prf, LinkPrf { tp: 2, fp: 1, fn_: 2 });
        assert!((prf.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(prf.recall(), 0.5);
        let f1 = 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
        assert!((prf.f1() - f1).abs() < 1e-12);
        // Accuracy on the same vectors cannot tell the wrong from the
        // abstained mention; precision can.
        assert_eq!(linking_accuracy(&p, &g).accuracy(), 0.5);
    }

    #[test]
    fn prf_edge_cases_are_zero_not_nan() {
        let e: Vec<Option<u32>> = vec![];
        let prf = linking_prf(&e, &e);
        assert_eq!((prf.precision(), prf.recall(), prf.f1()), (0.0, 0.0, 0.0));
        let all_abstain = linking_prf(&[None, None], &[Some(1u32), Some(2)]);
        assert_eq!(all_abstain.precision(), 0.0);
        assert_eq!(all_abstain.recall(), 0.0);
        assert_eq!(all_abstain.f1(), 0.0);
        let perfect = linking_prf(&[Some(3u32)], &[Some(3u32)]);
        assert_eq!(perfect.f1(), 1.0);
    }
}
