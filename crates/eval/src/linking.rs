//! Linking accuracy (paper §4.1).
//!
//! > "For the evaluation measure of OKB linking, we adopt accuracy which is
//! > a common measure for entity linking systems and calculated as the
//! > number of correctly linked NPs (RPs) divided by the total number of
//! > all NPs (RPs)."
//!
//! Gold targets may be absent for some mentions (NYTimes2018 labels only a
//! sample); unlabeled mentions are excluded from the denominator, matching
//! the paper's sampled-ground-truth protocol.

/// Accuracy result with raw counts for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkingScore {
    /// Mentions with a gold target.
    pub total: usize,
    /// Mentions whose prediction equals the gold target.
    pub correct: usize,
}

impl LinkingScore {
    /// Accuracy in `[0, 1]`; 0 when nothing is labeled.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Compare predictions against gold. Both are per-mention optional targets
/// (`None` prediction = abstained / NIL; `None` gold = unlabeled).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn linking_accuracy<T: PartialEq>(predicted: &[Option<T>], gold: &[Option<T>]) -> LinkingScore {
    assert_eq!(
        predicted.len(),
        gold.len(),
        "predicted and gold link vectors must cover the same mentions"
    );
    let mut total = 0;
    let mut correct = 0;
    for (p, g) in predicted.iter().zip(gold) {
        if let Some(g) = g {
            total += 1;
            if p.as_ref() == Some(g) {
                correct += 1;
            }
        }
    }
    LinkingScore { total, correct }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect() {
        let g = vec![Some(1u32), Some(2), Some(3)];
        let s = linking_accuracy(&g, &g);
        assert_eq!(s.accuracy(), 1.0);
        assert_eq!(s.total, 3);
    }

    #[test]
    fn partial() {
        let p = vec![Some(1u32), Some(9), None];
        let g = vec![Some(1u32), Some(2), Some(3)];
        let s = linking_accuracy(&p, &g);
        assert_eq!(s.correct, 1);
        assert_eq!(s.total, 3);
        assert!((s.accuracy() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unlabeled_gold_is_excluded() {
        let p = vec![Some(1u32), Some(7)];
        let g = vec![Some(1u32), None];
        let s = linking_accuracy(&p, &g);
        assert_eq!(s.total, 1);
        assert_eq!(s.accuracy(), 1.0);
    }

    #[test]
    fn abstaining_on_labeled_counts_as_wrong() {
        let p: Vec<Option<u32>> = vec![None];
        let g = vec![Some(5u32)];
        assert_eq!(linking_accuracy(&p, &g).accuracy(), 0.0);
    }

    #[test]
    fn empty_is_zero() {
        let e: Vec<Option<u32>> = vec![];
        assert_eq!(linking_accuracy(&e, &e).accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "same mentions")]
    fn size_mismatch_panics() {
        let p = vec![Some(1u32)];
        let g: Vec<Option<u32>> = vec![];
        linking_accuracy(&p, &g);
    }
}
