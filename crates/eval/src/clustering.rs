//! Clustering metrics: macro, micro and pairwise precision/recall/F1.
//!
//! These are the standard OKB-canonicalization measures introduced by
//! Galárraga et al. (CIKM 2014) and used by CESI, SIST and the JOCL paper:
//!
//! * **macro** — "evaluates whether the NPs or RPs with the same semantic
//!   meaning have been clustered into a group": a predicted cluster is
//!   macro-correct iff *all* of its elements share one gold cluster;
//!   macro recall is the same with roles swapped.
//! * **micro** — "evaluates the purity of the resulting groups": each
//!   predicted cluster contributes the size of its largest gold-pure
//!   subset; normalized by the number of items.
//! * **pairwise** — "evaluates individual pairwise merging decisions":
//!   precision/recall over same-cluster item pairs ("hits").
//!
//! The paper aggregates with **average F1** = mean(macro F1, micro F1,
//! pairwise F1).
//!
//! Degenerate denominators (no clusters / no pairs) yield a score of 0
//! unless both prediction and gold are equally empty, in which case the
//! metric is 1 (perfect agreement on nothing).

use jocl_cluster::Clustering;
use std::collections::HashMap;

/// A precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecallF1 {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl PrecisionRecallF1 {
    /// Build from precision and recall; F1 is their harmonic mean (0 when
    /// both are 0).
    pub fn new(precision: f64, recall: f64) -> Self {
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Self { precision, recall, f1 }
    }
}

/// Full score set for one clustering evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringScores {
    pub macro_: PrecisionRecallF1,
    pub micro: PrecisionRecallF1,
    pub pairwise: PrecisionRecallF1,
}

impl ClusteringScores {
    /// The paper's headline aggregate: mean of the three F1 scores.
    pub fn average_f1(&self) -> f64 {
        (self.macro_.f1 + self.micro.f1 + self.pairwise.f1) / 3.0
    }
}

/// Evaluate `predicted` against `gold` over the same item universe.
///
/// # Panics
/// Panics if the clusterings cover different numbers of items.
pub fn evaluate_clustering(predicted: &Clustering, gold: &Clustering) -> ClusteringScores {
    assert_eq!(
        predicted.len(),
        gold.len(),
        "predicted and gold clusterings must cover the same items"
    );
    evaluate_subset(predicted, gold, None)
}

/// Evaluate restricted to the items in `subset` (the paper's protocol for
/// NYTimes2018, where only a labeled sample has gold annotations). Items
/// outside the subset are ignored entirely: clusters are re-formed on the
/// induced sub-partition.
pub fn evaluate_clustering_on(
    predicted: &Clustering,
    gold: &Clustering,
    subset: &[usize],
) -> ClusteringScores {
    evaluate_subset(predicted, gold, Some(subset))
}

fn evaluate_subset(
    predicted: &Clustering,
    gold: &Clustering,
    subset: Option<&[usize]>,
) -> ClusteringScores {
    // Collect the item universe.
    let items: Vec<usize> = match subset {
        Some(s) => s.to_vec(),
        None => (0..predicted.len()).collect(),
    };
    // Induced cluster membership maps.
    let mut pred_clusters: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut gold_clusters: HashMap<u32, Vec<usize>> = HashMap::new();
    for &i in &items {
        pred_clusters.entry(predicted.cluster_of(i)).or_default().push(i);
        gold_clusters.entry(gold.cluster_of(i)).or_default().push(i);
    }
    let macro_p = macro_purity(&pred_clusters, gold);
    let macro_r = macro_purity(&gold_clusters, predicted);
    let micro_p = micro_purity(&pred_clusters, gold, items.len());
    let micro_r = micro_purity(&gold_clusters, predicted, items.len());
    let (pair_p, pair_r) = pairwise_scores(&pred_clusters, &gold_clusters, gold, predicted);
    ClusteringScores {
        macro_: PrecisionRecallF1::new(macro_p, macro_r),
        micro: PrecisionRecallF1::new(micro_p, micro_r),
        pairwise: PrecisionRecallF1::new(pair_p, pair_r),
    }
}

/// Fraction of clusters whose members all share one reference cluster.
fn macro_purity(clusters: &HashMap<u32, Vec<usize>>, reference: &Clustering) -> f64 {
    if clusters.is_empty() {
        return 1.0; // nothing predicted, nothing wrong
    }
    let pure = clusters
        .values()
        .filter(|members| {
            let first = reference.cluster_of(members[0]);
            members.iter().all(|&m| reference.cluster_of(m) == first)
        })
        .count();
    pure as f64 / clusters.len() as f64
}

/// Σ_c max_e |c ∩ e| / N.
fn micro_purity(clusters: &HashMap<u32, Vec<usize>>, reference: &Clustering, n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let mut hit = 0usize;
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for members in clusters.values() {
        counts.clear();
        for &m in members {
            *counts.entry(reference.cluster_of(m)).or_insert(0) += 1;
        }
        hit += counts.values().copied().max().unwrap_or(0);
    }
    hit as f64 / n as f64
}

/// Pairwise precision and recall over same-cluster pairs.
fn pairwise_scores(
    pred_clusters: &HashMap<u32, Vec<usize>>,
    gold_clusters: &HashMap<u32, Vec<usize>>,
    gold: &Clustering,
    predicted: &Clustering,
) -> (f64, f64) {
    let mut pred_pairs = 0u64;
    let mut hits = 0u64;
    for members in pred_clusters.values() {
        pred_pairs += n_choose_2(members.len());
        for (a_idx, &a) in members.iter().enumerate() {
            for &b in &members[a_idx + 1..] {
                if gold.cluster_of(a) == gold.cluster_of(b) {
                    hits += 1;
                }
            }
        }
    }
    let gold_pairs: u64 = gold_clusters.values().map(|m| n_choose_2(m.len())).sum();
    let precision = ratio_or_empty(hits, pred_pairs, gold_pairs);
    // Recall hits are the same pair set by symmetry.
    let recall = ratio_or_empty(hits, gold_pairs, pred_pairs);
    let _ = predicted;
    (precision, recall)
}

/// `num / den`, except when both sides have no pairs at all the decision
/// set is empty and we score perfect agreement.
fn ratio_or_empty(num: u64, den: u64, other_den: u64) -> f64 {
    if den == 0 {
        if other_den == 0 {
            1.0
        } else {
            0.0
        }
    } else {
        num as f64 / den as f64
    }
}

fn n_choose_2(n: usize) -> u64 {
    let n = n as u64;
    n * n.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels)
    }

    #[test]
    fn perfect_clustering_scores_one_everywhere() {
        let gold = clusters(&[0, 0, 1, 1, 2]);
        let s = evaluate_clustering(&gold, &gold);
        for m in [s.macro_, s.micro, s.pairwise] {
            assert_eq!(m.precision, 1.0);
            assert_eq!(m.recall, 1.0);
            assert_eq!(m.f1, 1.0);
        }
        assert_eq!(s.average_f1(), 1.0);
    }

    #[test]
    fn all_singletons_vs_one_gold_cluster() {
        let predicted = clusters(&[0, 1, 2, 3]);
        let gold = clusters(&[0, 0, 0, 0]);
        let s = evaluate_clustering(&predicted, &gold);
        // Every singleton is pure → macro precision 1; the gold cluster is
        // split → macro recall 0 (its items are not in one predicted group).
        assert_eq!(s.macro_.precision, 1.0);
        assert_eq!(s.macro_.recall, 0.0);
        // Micro precision 1 (each singleton is trivially pure); micro
        // recall: best predicted cluster inside gold has 1 item → 1/4.
        assert_eq!(s.micro.precision, 1.0);
        assert_eq!(s.micro.recall, 0.25);
        // No predicted pairs, 6 gold pairs.
        assert_eq!(s.pairwise.precision, 0.0);
        assert_eq!(s.pairwise.recall, 0.0);
    }

    #[test]
    fn worked_example_hand_computed() {
        // predicted: {0,1,2} {3,4}; gold: {0,1} {2,3} {4}
        let predicted = clusters(&[0, 0, 0, 1, 1]);
        let gold = clusters(&[0, 0, 1, 1, 2]);
        let s = evaluate_clustering(&predicted, &gold);
        // macro precision: neither predicted cluster is pure → 0.
        assert_eq!(s.macro_.precision, 0.0);
        // macro recall: gold {0,1} ⊂ pred {0,1,2} pure w.r.t. predicted →
        // all members same predicted cluster → counts; {2,3} spans both
        // predicted clusters → no; {4} singleton → yes. 2/3.
        assert!((s.macro_.recall - 2.0 / 3.0).abs() < 1e-12);
        // micro precision: cluster {0,1,2}: max overlap 2; {3,4}: max 1.
        // (2+1+... wait {3,4}: gold of 3 is 1, of 4 is 2 → max 1) = 3/5.
        assert!((s.micro.precision - 0.6).abs() < 1e-12);
        // micro recall: gold {0,1}: both in pred 0 → 2; {2,3}: split → 1;
        // {4}: 1. total 4/5.
        assert!((s.micro.recall - 0.8).abs() < 1e-12);
        // pairwise: predicted pairs: C(3,2)+C(2,2)=3+1=4. hits: (0,1) only
        // → 1. precision 1/4. gold pairs: 1+1+0=2. recall 1/2.
        assert!((s.pairwise.precision - 0.25).abs() < 1e-12);
        assert!((s.pairwise.recall - 0.5).abs() < 1e-12);
        // average F1 consistency.
        let avg = (s.macro_.f1 + s.micro.f1 + s.pairwise.f1) / 3.0;
        assert!((s.average_f1() - avg).abs() < 1e-12);
    }

    #[test]
    fn one_big_predicted_cluster() {
        let predicted = clusters(&[0, 0, 0, 0]);
        let gold = clusters(&[0, 0, 1, 1]);
        let s = evaluate_clustering(&predicted, &gold);
        assert_eq!(s.macro_.precision, 0.0);
        assert_eq!(s.macro_.recall, 1.0); // each gold cluster inside the blob
        assert_eq!(s.micro.precision, 0.5);
        assert_eq!(s.micro.recall, 1.0);
        // pred pairs 6, hits 2 → 1/3; gold pairs 2, recall 1.
        assert!((s.pairwise.precision - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.pairwise.recall, 1.0);
    }

    #[test]
    fn subset_evaluation_ignores_outsiders() {
        let predicted = clusters(&[0, 0, 1, 1, 1]);
        let gold = clusters(&[0, 0, 1, 1, 0]);
        // Full eval is imperfect, but restricted to {0,1,2,3} it is perfect.
        let full = evaluate_clustering(&predicted, &gold);
        assert!(full.average_f1() < 1.0);
        let sub = evaluate_clustering_on(&predicted, &gold, &[0, 1, 2, 3]);
        assert_eq!(sub.average_f1(), 1.0);
    }

    #[test]
    fn empty_universe_is_perfect() {
        let s = evaluate_clustering(&clusters(&[]), &clusters(&[]));
        assert_eq!(s.average_f1(), 1.0);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn mismatched_sizes_panic() {
        evaluate_clustering(&clusters(&[0]), &clusters(&[0, 1]));
    }

    #[test]
    fn f1_harmonic_mean() {
        let m = PrecisionRecallF1::new(1.0, 0.5);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
        let zero = PrecisionRecallF1::new(0.0, 0.0);
        assert_eq!(zero.f1, 0.0);
    }
}
