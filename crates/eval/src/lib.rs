#![forbid(unsafe_code)]
//! # jocl-eval
//!
//! Evaluation suite for the JOCL reproduction.
//!
//! * [`clustering`] — the macro / micro / pairwise precision, recall and F1
//!   metrics of Galárraga et al. (CIKM 2014), used by the paper for OKB
//!   canonicalization (§4.1: "we adopt the same evaluation measures (i.e.,
//!   macro, micro, and pairwise metrics) as previous works"), plus the
//!   *average F1* aggregate.
//! * [`linking`] — linking accuracy (§4.1: "the number of correctly linked
//!   NPs (RPs) divided by the total number of all NPs (RPs)").
//! * [`report`] — ASCII tables and bar charts used by the `jocl-bench`
//!   binaries to render each table/figure of the paper.

pub mod clustering;
pub mod linking;
pub mod report;

pub use clustering::{evaluate_clustering, ClusteringScores, PrecisionRecallF1};
pub use linking::{linking_accuracy, linking_prf, LinkPrf, LinkingScore};
pub use report::{BarChart, Table};
