//! # jocl-exec
//!
//! A persistent worker pool for deterministic data-parallel loops.
//!
//! The hot stages of the pipeline (LBP sweeps, sharded graph build) need
//! the same execution shape: split a fixed item range into contiguous
//! chunks, process every chunk exactly once, and combine per-chunk results
//! in **chunk order** so the outcome is identical for any worker count.
//! Before this crate, each LBP sweep spawned fresh scoped threads; at ring
//! size 400 the spawn cost alone made 4 threads *slower* than serial
//! (`BENCH_NOTES.md`). [`with_pool`] spawns workers once and reuses them
//! for every [`Pool::chunked_for_each`] / [`Pool::map_reduce`] call inside
//! the closure.
//!
//! Guarantees:
//!
//! * **Deterministic chunking** — chunk `i` always covers
//!   `[i·chunk_size, min((i+1)·chunk_size, n))`, independent of the worker
//!   count; which worker runs a chunk is scheduling-dependent, the chunk
//!   boundaries and the reduction order never are.
//! * **Ordered reduction** — [`Pool::map_reduce`] folds per-chunk results
//!   strictly by ascending chunk index.
//! * **Panic safety** — a panicking chunk poisons the job; the submitting
//!   thread re-panics after the job drains instead of deadlocking.
//!
//! Workers are capped at [`available_parallelism`]: oversubscribing a
//! small machine only adds context-switch overhead, and determinism does
//! not depend on the cap (chunk boundaries are fixed by `chunk_size`).

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Number of hardware threads (1 if the query fails).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Clamp a requested worker count to the hardware: at least 1, at most
/// [`available_parallelism`]. `0` means "use all hardware threads".
pub fn effective_threads(requested: usize) -> usize {
    let hw = available_parallelism();
    if requested == 0 {
        hw
    } else {
        requested.min(hw).max(1)
    }
}

/// Number of chunks covering `n_items` at `chunk_size` items per chunk.
pub fn chunk_count(n_items: usize, chunk_size: usize) -> usize {
    n_items.div_ceil(chunk_size.max(1))
}

/// The item range of chunk `index` (deterministic for any worker count).
pub fn chunk_range(n_items: usize, chunk_size: usize, index: usize) -> Range<usize> {
    let chunk_size = chunk_size.max(1);
    let start = index * chunk_size;
    start..(start + chunk_size).min(n_items)
}

/// A type-erased chunk task: `call(data, chunk_index)`.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    // SAFETY contract: `call` may only be invoked while `data` points at
    // the live closure it was erased from (enforced by the submit/wait
    // epoch protocol in `chunked_for_each`).
    call: unsafe fn(*const (), usize),
}

// SAFETY: `data` points at a `Sync` closure that outlives the job (the
// submitting thread blocks until every worker has finished the job).
unsafe impl Send for Job {}

struct State {
    /// Incremented per submitted job; workers run the job when they see a
    /// new epoch.
    epoch: u64,
    job: Option<Job>,
    /// Workers that have finished the current epoch (== `workers` when
    /// the pool is idle).
    idle_workers: usize,
    shutdown: bool,
}

/// Shared pool state; lives on the stack of [`with_pool`].
struct Shared {
    state: Mutex<State>,
    start_cv: Condvar,
    done_cv: Condvar,
    /// Next chunk index to claim (work stealing within a job).
    next_chunk: AtomicUsize,
    n_chunks: AtomicUsize,
    poisoned: AtomicBool,
    workers: usize,
}

impl Shared {
    /// Lock the pool state, **recovering** from mutex poisoning. The
    /// state is a plain counter struct with no invariants that a panic
    /// mid-critical-section could tear (every field is written atomically
    /// under the lock, and the panic still propagates to the submitter
    /// via the `poisoned` flag / unwind). Before this, a single panic
    /// that poisoned the mutex turned *every* subsequent pool call into
    /// an `expect` panic — in a server, one bad request would take down
    /// the listener instead of failing that request.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn new(workers: usize) -> Self {
        Self {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                idle_workers: workers,
                shutdown: false,
            }),
            start_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next_chunk: AtomicUsize::new(0),
            n_chunks: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            workers,
        }
    }

    /// Claim and run chunks until the job is exhausted. Called by workers
    /// and by the submitting thread (which participates in its own jobs).
    fn run_chunks(&self, job: Job) {
        let n = self.n_chunks.load(Ordering::Acquire);
        loop {
            let c = self.next_chunk.fetch_add(1, Ordering::Relaxed);
            if c >= n {
                break;
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // SAFETY: the closure behind `data` is `Sync` and alive for
                // the whole job (the submitter blocks until completion).
                unsafe { (job.call)(job.data, c) }
            }));
            if outcome.is_err() {
                self.poisoned.store(true, Ordering::Release);
            }
        }
    }

    fn worker_loop(&self) {
        let mut seen_epoch = 0u64;
        loop {
            let job = {
                let mut g = self.lock_state();
                loop {
                    if g.shutdown {
                        return;
                    }
                    if g.epoch != seen_epoch {
                        break;
                    }
                    g = self.start_cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                seen_epoch = g.epoch;
                g.job.expect("job must be set for a new epoch")
            };
            self.run_chunks(job);
            let mut g = self.lock_state();
            g.idle_workers += 1;
            if g.idle_workers == self.workers {
                self.done_cv.notify_all();
            }
        }
    }

    /// Submit a job, participate in it, and block until every worker has
    /// drained it. Panics (after the job drains) if any chunk panicked.
    fn run_job(&self, n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        struct DynTask<'a>(&'a (dyn Fn(usize) + Sync));
        unsafe fn call_dyn(data: *const (), chunk: usize) {
            // SAFETY: `data` is the `DynTask` constructed in this call's
            // stack frame, alive until `run_job` returns.
            let task = unsafe { &*(data as *const DynTask) };
            (task.0)(chunk);
        }
        let task = DynTask(f);
        let job = Job { data: (&raw const task).cast(), call: call_dyn };
        {
            let mut g = self.lock_state();
            debug_assert_eq!(g.idle_workers, self.workers, "pool reentered mid-job");
            self.next_chunk.store(0, Ordering::Relaxed);
            self.n_chunks.store(n_chunks, Ordering::Release);
            g.job = Some(job);
            g.epoch += 1;
            g.idle_workers = 0;
            self.start_cv.notify_all();
        }
        self.run_chunks(job);
        {
            let mut g = self.lock_state();
            while g.idle_workers < self.workers {
                g = self.done_cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            g.job = None;
        }
        if self.poisoned.swap(false, Ordering::AcqRel) {
            panic!("jocl_exec worker task panicked");
        }
    }

    fn shutdown(&self) {
        let mut g = self.lock_state();
        g.shutdown = true;
        self.start_cv.notify_all();
    }
}

/// Ensures workers are released even when the pool closure unwinds.
struct ShutdownGuard<'a>(&'a Shared);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Handle to a running pool; only usable inside [`with_pool`].
pub struct Pool<'s> {
    shared: Option<&'s Shared>,
    threads: usize,
    /// Keep the pool on the thread that created it: submitting a job from
    /// inside a chunk would deadlock the epoch handshake.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Pool<'_> {
    /// Worker count (including the submitting thread), after clamping.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(chunk_index, item_range)` for every chunk of `0..n_items`.
    ///
    /// Chunk boundaries are deterministic ([`chunk_range`]); execution
    /// order across chunks is not, so chunks must touch disjoint data.
    /// Small jobs (or a 1-thread pool) run inline in chunk order.
    pub fn chunked_for_each<F>(&self, n_items: usize, chunk_size: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let n_chunks = chunk_count(n_items, chunk_size);
        match self.shared {
            // A single chunk gains nothing from the handshake.
            Some(shared) if n_chunks > 1 => {
                shared.run_job(n_chunks, &|c| f(c, chunk_range(n_items, chunk_size, c)));
            }
            _ => {
                for c in 0..n_chunks {
                    f(c, chunk_range(n_items, chunk_size, c));
                }
            }
        }
    }

    /// Map every chunk of `0..n_items` to a value and return the values in
    /// ascending chunk order. Each chunk writes its own pre-allocated slot
    /// (no locks), so this is the cheapest way to drain a ready set in
    /// parallel while keeping a deterministic result layout — the residual
    /// LBP scheduler uses it to process a popped batch of factor blocks and
    /// read back per-chunk residual summaries in order.
    pub fn map_chunks<T, M>(&self, n_items: usize, chunk_size: usize, map: M) -> Vec<T>
    where
        T: Send,
        M: Fn(usize, Range<usize>) -> T + Sync,
    {
        struct SlotPtr<T>(*mut Option<T>);
        // SAFETY: the pointer targets `slots`, which outlives the scoped
        // dispatch below; each chunk index writes a disjoint slot, so
        // sharing the base pointer across workers races nothing.
        unsafe impl<T: Send> Send for SlotPtr<T> {}
        // SAFETY: as above — workers only `.add(c)` to disjoint slots.
        unsafe impl<T: Send> Sync for SlotPtr<T> {}
        let n_chunks = chunk_count(n_items, chunk_size);
        let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
        {
            let ptr = SlotPtr(slots.as_mut_ptr());
            self.chunked_for_each(n_items, chunk_size, |c, range| {
                let value = map(c, range);
                let ptr = &ptr;
                // SAFETY: chunk `c` is claimed exactly once, so slot `c` has
                // a single writer; the overwritten value is the `None` the
                // slot was initialized with (nothing to drop).
                unsafe { ptr.0.add(c).write(Some(value)) };
            });
        }
        slots.into_iter().map(|v| v.expect("every chunk produces a value")).collect()
    }

    /// Map every chunk of `0..n_items` to a value, then fold the values in
    /// ascending chunk order: `acc = reduce(acc, map(chunk))`. The fold
    /// order makes the result deterministic for any worker count.
    pub fn map_reduce<T, A, M, R>(
        &self,
        n_items: usize,
        chunk_size: usize,
        map: M,
        init: A,
        mut reduce: R,
    ) -> A
    where
        T: Send,
        M: Fn(usize, Range<usize>) -> T + Sync,
        R: FnMut(A, T) -> A,
    {
        self.map_chunks(n_items, chunk_size, map).into_iter().fold(init, &mut reduce)
    }
}

/// Spawn a pool of exactly `threads` workers (including the calling
/// thread), run `f` with a [`Pool`] handle, join the workers, and return
/// `f`'s result. With `threads <= 1` no threads are spawned and every
/// pool call runs inline — byte-for-byte the serial execution.
///
/// No hardware clamping happens here: oversubscription is the caller's
/// policy decision (pass the count through [`effective_threads`] to cap
/// at the hardware; tests deliberately oversubscribe to exercise the
/// parallel path on small machines).
pub fn with_pool<R, F>(threads: usize, f: F) -> R
where
    F: FnOnce(&Pool<'_>) -> R,
{
    let threads = threads.max(1);
    if threads == 1 {
        return f(&Pool { shared: None, threads: 1, _not_send: std::marker::PhantomData });
    }
    let shared = Shared::new(threads - 1);
    let result = crossbeam::scope(|s| {
        let guard = ShutdownGuard(&shared);
        for _ in 0..threads - 1 {
            let shared = &shared;
            s.spawn(move |_| shared.worker_loop());
        }
        let out = f(&Pool { shared: Some(&shared), threads, _not_send: std::marker::PhantomData });
        drop(guard);
        out
    });
    match result {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_math() {
        assert_eq!(chunk_count(0, 4), 0);
        assert_eq!(chunk_count(10, 4), 3);
        assert_eq!(chunk_range(10, 4, 0), 0..4);
        assert_eq!(chunk_range(10, 4, 2), 8..10);
        // chunk_size 0 is treated as 1.
        assert_eq!(chunk_count(3, 0), 3);
        assert_eq!(chunk_range(3, 0, 2), 2..3);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(1), 1);
        assert!(effective_threads(0) >= 1);
        assert!(effective_threads(usize::MAX) <= available_parallelism());
    }

    #[test]
    fn for_each_covers_every_index_once() {
        for threads in [1, 4] {
            let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
            with_pool(threads, |pool| {
                pool.chunked_for_each(hits.len(), 7, |_, range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn map_reduce_is_ordered_and_thread_invariant() {
        // Concatenation is order-sensitive: equal output for 1 vs N
        // workers proves the chunk-order reduction.
        let run = |threads: usize| -> Vec<usize> {
            with_pool(threads, |pool| {
                pool.map_reduce(
                    25,
                    4,
                    |_, range| range.collect::<Vec<usize>>(),
                    Vec::new(),
                    |mut acc, mut chunk| {
                        acc.append(&mut chunk);
                        acc
                    },
                )
            })
        };
        let serial = run(1);
        assert_eq!(serial, (0..25).collect::<Vec<usize>>());
        assert_eq!(serial, run(4));
    }

    #[test]
    fn map_chunks_returns_values_in_chunk_order() {
        for threads in [1, 4] {
            let chunks = with_pool(threads, |pool| {
                pool.map_chunks(23, 5, |c, range| (c, range.start, range.len()))
            });
            assert_eq!(chunks, vec![(0, 0, 5), (1, 5, 5), (2, 10, 5), (3, 15, 5), (4, 20, 3)]);
        }
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let total = AtomicU64::new(0);
        with_pool(4, |pool| {
            for _ in 0..50 {
                pool.chunked_for_each(64, 8, |_, range| {
                    total.fetch_add(range.len() as u64, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 50 * 64);
    }

    #[test]
    fn empty_job_is_a_noop() {
        with_pool(4, |pool| {
            pool.chunked_for_each(0, 8, |_, _| panic!("no chunks expected"));
            let acc = pool.map_reduce(0, 8, |_, _| 1u32, 0u32, |a, b| a + b);
            assert_eq!(acc, 0);
        });
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let caught = std::panic::catch_unwind(|| {
            with_pool(4, |pool| {
                pool.chunked_for_each(32, 1, |c, _| {
                    if c == 17 {
                        panic!("chunk 17 exploded");
                    }
                });
            });
        });
        assert!(caught.is_err());
    }

    /// The serving regression: a panicking chunk (e.g. one bad LBP block
    /// inside a server request) must fail *that job* and leave the pool
    /// fully usable for the next request — not take down the listener.
    #[test]
    fn pool_survives_a_failed_job_and_serves_the_next() {
        with_pool(4, |pool| {
            for round in 0..3 {
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    pool.chunked_for_each(32, 1, |c, _| {
                        if c == 9 {
                            panic!("request {round} exploded");
                        }
                    });
                }));
                assert!(caught.is_err(), "round {round} must propagate the chunk panic");
                // The next "request" on the same pool succeeds and still
                // covers every chunk exactly once.
                let hits: Vec<AtomicUsize> = (0..48).map(|_| AtomicUsize::new(0)).collect();
                pool.chunked_for_each(hits.len(), 5, |_, range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            }
        });
    }

    /// Panic injection for the poisoned-lock path: poison the state
    /// mutex directly (a panic while holding it), then prove the pool
    /// recovers the lock and keeps scheduling jobs instead of cascading
    /// `expect` panics through every later call.
    #[test]
    fn poisoned_state_mutex_is_recovered() {
        with_pool(4, |pool| {
            let shared = pool.shared.expect("4-thread pool has shared state");
            let poison = || {
                std::thread::scope(|s| {
                    let _ = s
                        .spawn(|| {
                            // The R2 recovery pattern even here: the guard
                            // is healthy at this point, and the deliberate
                            // panic below is what poisons it.
                            let _guard = shared
                                .state
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            panic!("deliberate poison while holding the state lock");
                        })
                        .join();
                });
                assert!(shared.state.lock().is_err(), "mutex must actually be poisoned");
            };
            poison();
            let total = AtomicU64::new(0);
            pool.chunked_for_each(64, 8, |_, range| {
                total.fetch_add(range.len() as u64, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 64);
            // Recovery is not one-shot: poison again and the pool must
            // still schedule (every lock site recovers, none unwraps).
            poison();
            let again = AtomicU64::new(0);
            pool.chunked_for_each(96, 16, |_, range| {
                again.fetch_add(range.len() as u64, Ordering::Relaxed);
            });
            assert_eq!(again.load(Ordering::Relaxed), 96);
        });
    }

    #[test]
    fn closure_panic_releases_workers() {
        let caught = std::panic::catch_unwind(|| {
            with_pool(4, |_pool| panic!("main thread panic"));
        });
        assert!(caught.is_err());
    }

    #[test]
    fn result_escapes_pool() {
        let v = with_pool(2, |pool| {
            pool.map_reduce(100, 9, |_, r| r.sum::<usize>(), 0usize, |a, b| a + b)
        });
        assert_eq!(v, (0..100).sum());
    }
}
