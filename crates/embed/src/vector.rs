//! Dense `f32` vector kernels.
//!
//! Tight loops over slices; the compiler autovectorizes these shapes well,
//! which matters because phrase-similarity computation dominates the
//! blocking stage.

/// Dot product. Panics in debug builds on length mismatch.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity in `[-1, 1]`; zero vectors yield 0.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)) as f64
}

/// Cosine mapped to `[0, 1]` (`(cos + 1) / 2`), the range the paper's
/// feature functions expect.
#[inline]
pub fn cosine01(a: &[f32], b: &[f32]) -> f64 {
    (cosine(a, b) + 1.0) / 2.0
}

/// `y ← y + alpha · x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y ← alpha · y`.
#[inline]
pub fn scale(alpha: f32, y: &mut [f32]) {
    for yi in y.iter_mut() {
        *yi *= alpha;
    }
}

/// Normalize to unit length in place (no-op for the zero vector).
pub fn normalize(y: &mut [f32]) {
    let n = norm(y);
    if n > 0.0 {
        scale(1.0 / n, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_cosine_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn cosine01_range() {
        assert!((cosine01(&[1.0], &[-1.0]) - 0.0).abs() < 1e-6);
        assert!((cosine01(&[1.0], &[1.0]) - 1.0).abs() < 1e-6);
        assert!((cosine01(&[1.0, 0.0], &[0.0, 1.0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn axpy_scale_normalize() {
        let mut y = vec![1.0f32, 2.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 10.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, 5.0]);
        normalize(&mut y);
        assert!((norm(&y) - 1.0).abs() < 1e-6);
        let mut zero = vec![0.0f32, 0.0];
        normalize(&mut zero);
        assert_eq!(zero, vec![0.0, 0.0]);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = [0.3f32, -0.7, 0.2];
        let b = [1.2f32, 0.1, -0.4];
        let a2: Vec<f32> = a.iter().map(|x| x * 7.5).collect();
        assert!((cosine(&a, &b) - cosine(&a2, &b)).abs() < 1e-6);
    }
}
