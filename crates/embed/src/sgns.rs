//! Skip-gram with negative sampling (word2vec), from scratch.
//!
//! Replaces the paper's fastText/Common-Crawl vectors (§3.1.3). Given a
//! corpus of tokenized sentences, the trainer learns input vectors `v_w`
//! and output vectors `u_c` by SGD on the SGNS objective
//!
//! ```text
//! log σ(v_w · u_c) + Σ_{k negatives} log σ(−v_w · u_n)
//! ```
//!
//! with a window around each center word and negatives drawn from the
//! unigram distribution raised to 3/4. Training is single-threaded and
//! fully deterministic under a fixed seed, which matters for reproducible
//! experiment tables.

use crate::store::EmbeddingStore;
use jocl_text::fx::FxHashMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters for [`train_sgns`].
#[derive(Debug, Clone)]
pub struct SgnsOptions {
    /// Embedding dimension.
    pub dim: usize,
    /// Max distance between center and context.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 1e-4 of itself).
    pub lr: f64,
    /// Words rarer than this are dropped.
    pub min_count: usize,
    /// RNG seed (training is deterministic given the seed).
    pub seed: u64,
}

impl Default for SgnsOptions {
    fn default() -> Self {
        Self { dim: 48, window: 4, negative: 5, epochs: 8, lr: 0.05, min_count: 1, seed: 7 }
    }
}

/// σ(x), clipped for numerical safety.
#[inline]
fn sigmoid(x: f64) -> f64 {
    if x > 8.0 {
        1.0
    } else if x < -8.0 {
        0.0
    } else {
        1.0 / (1.0 + (-x).exp())
    }
}

/// Train SGNS on `sentences` (each a tokenized sentence). Returns the
/// input-vector store.
pub fn train_sgns(sentences: &[Vec<String>], opts: &SgnsOptions) -> EmbeddingStore {
    assert!(opts.dim > 0 && opts.window > 0, "dim and window must be positive");
    // Vocabulary with counts.
    let mut counts: FxHashMap<&str, usize> = FxHashMap::default();
    for s in sentences {
        for w in s {
            *counts.entry(w.as_str()).or_insert(0) += 1;
        }
    }
    let mut vocab: Vec<(&str, usize)> =
        counts.into_iter().filter(|&(_, c)| c >= opts.min_count).collect();
    vocab.sort(); // deterministic id assignment
    let index: FxHashMap<&str, u32> =
        vocab.iter().enumerate().map(|(i, &(w, _))| (w, i as u32)).collect();
    let v = vocab.len();
    if v == 0 {
        return EmbeddingStore::new(opts.dim);
    }

    // Negative-sampling table over unigram^{3/4}.
    const TABLE_SIZE: usize = 1 << 18;
    let mut neg_table = Vec::with_capacity(TABLE_SIZE);
    let total_pow: f64 = vocab.iter().map(|&(_, c)| (c as f64).powf(0.75)).sum();
    {
        let mut i = 0usize;
        let mut cum = (vocab[0].1 as f64).powf(0.75) / total_pow;
        for t in 0..TABLE_SIZE {
            let frac = (t as f64 + 0.5) / TABLE_SIZE as f64;
            while frac > cum && i + 1 < v {
                i += 1;
                cum += (vocab[i].1 as f64).powf(0.75) / total_pow;
            }
            neg_table.push(i as u32);
        }
    }

    // Encode corpus as ids.
    let encoded: Vec<Vec<u32>> = sentences
        .iter()
        .map(|s| s.iter().filter_map(|w| index.get(w.as_str()).copied()).collect())
        .collect();
    let total_tokens: usize = encoded.iter().map(Vec::len).sum();

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let dim = opts.dim;
    // Input vectors: small random init; output vectors: zero init (the
    // word2vec convention).
    let mut input = vec![0.0f32; v * dim];
    for x in input.iter_mut() {
        *x = (rng.gen::<f32>() - 0.5) / dim as f32;
    }
    let mut output = vec![0.0f32; v * dim];

    let steps_total = (opts.epochs * total_tokens).max(1);
    let mut steps_done = 0usize;
    let mut grad = vec![0.0f32; dim];
    for _epoch in 0..opts.epochs {
        for sent in &encoded {
            for (pos, &center) in sent.iter().enumerate() {
                steps_done += 1;
                let progress = steps_done as f64 / steps_total as f64;
                let lr = (opts.lr * (1.0 - progress)).max(opts.lr * 1e-4) as f32;
                // Dynamic window, as in word2vec.
                let b = rng.gen_range(1..=opts.window);
                let lo = pos.saturating_sub(b);
                let hi = (pos + b + 1).min(sent.len());
                for (ctx_pos, &context) in sent.iter().enumerate().take(hi).skip(lo) {
                    if ctx_pos == pos {
                        continue;
                    }
                    grad.fill(0.0);
                    let c_row = center as usize * dim;
                    // Positive update.
                    {
                        let o_row = context as usize * dim;
                        let score: f64 = input[c_row..c_row + dim]
                            .iter()
                            .zip(&output[o_row..o_row + dim])
                            .map(|(a, b)| (a * b) as f64)
                            .sum();
                        let g = ((1.0 - sigmoid(score)) as f32) * lr;
                        for d in 0..dim {
                            grad[d] += g * output[o_row + d];
                            output[o_row + d] += g * input[c_row + d];
                        }
                    }
                    // Negative updates.
                    for _ in 0..opts.negative {
                        let neg = neg_table[rng.gen_range(0..TABLE_SIZE)];
                        if neg == context {
                            continue;
                        }
                        let o_row = neg as usize * dim;
                        let score: f64 = input[c_row..c_row + dim]
                            .iter()
                            .zip(&output[o_row..o_row + dim])
                            .map(|(a, b)| (a * b) as f64)
                            .sum();
                        let g = (-(sigmoid(score) as f32)) * lr;
                        for d in 0..dim {
                            grad[d] += g * output[o_row + d];
                            output[o_row + d] += g * input[c_row + d];
                        }
                    }
                    for d in 0..dim {
                        input[c_row + d] += grad[d];
                    }
                }
            }
        }
    }

    let mut store = EmbeddingStore::new(dim);
    for (i, &(w, _)) in vocab.iter().enumerate() {
        store.insert(w, &input[i * dim..(i + 1) * dim]);
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::cosine;

    /// Two disjoint topic clusters; words within a cluster co-occur, words
    /// across clusters never do. SGNS must place same-cluster words closer.
    fn topic_corpus() -> Vec<Vec<String>> {
        let cluster_a = ["apple", "banana", "cherry", "grape"];
        let cluster_b = ["engine", "wheel", "brake", "gear"];
        let mut sentences = Vec::new();
        for round in 0..60 {
            for (i, _) in cluster_a.iter().enumerate() {
                let s: Vec<String> =
                    (0..4).map(|k| cluster_a[(i + k + round) % 4].to_string()).collect();
                sentences.push(s);
            }
            for (i, _) in cluster_b.iter().enumerate() {
                let s: Vec<String> =
                    (0..4).map(|k| cluster_b[(i + k + round) % 4].to_string()).collect();
                sentences.push(s);
            }
        }
        sentences
    }

    #[test]
    fn clusters_separate() {
        let corpus = topic_corpus();
        let store = train_sgns(
            &corpus,
            &SgnsOptions { dim: 16, epochs: 40, window: 3, ..Default::default() },
        );
        let a1 = store.get("apple").unwrap();
        let a2 = store.get("banana").unwrap();
        let b1 = store.get("engine").unwrap();
        let within = cosine(a1, a2);
        let across = cosine(a1, b1);
        assert!(
            within > across + 0.2,
            "within-cluster {within} should exceed cross-cluster {across}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = topic_corpus();
        let opts = SgnsOptions { dim: 8, epochs: 2, ..Default::default() };
        let s1 = train_sgns(&corpus, &opts);
        let s2 = train_sgns(&corpus, &opts);
        assert_eq!(s1.get("apple"), s2.get("apple"));
    }

    #[test]
    fn min_count_filters_rare_words() {
        let corpus = vec![
            vec!["common".to_string(), "common".to_string(), "rare".to_string()],
            vec!["common".to_string(), "common".to_string()],
        ];
        let store =
            train_sgns(&corpus, &SgnsOptions { min_count: 2, epochs: 1, ..Default::default() });
        assert!(store.get("common").is_some());
        assert!(store.get("rare").is_none());
    }

    #[test]
    fn empty_corpus_gives_empty_store() {
        let store = train_sgns(&[], &SgnsOptions::default());
        assert!(store.is_empty());
    }

    #[test]
    fn sigmoid_clipping() {
        assert_eq!(sigmoid(100.0), 1.0);
        assert_eq!(sigmoid(-100.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
