//! Word-embedding storage with phrase composition.
//!
//! Vectors live in one flat `f32` arena; the vocabulary maps words to row
//! indexes. Phrase embeddings are word averages (paper §3.1.3), and
//! `Sim_emb` is cosine mapped to `[0, 1]`.
//!
//! A compact binary codec (via the `bytes` crate) persists stores so a
//! trained model can be reused across bench runs.

use crate::vector::{cosine01, normalize};
use bytes::{Buf, BufMut};
use jocl_text::fx::FxHashMap;
use jocl_text::tokenize;
use std::io::{Read, Write};

/// A word → vector store with phrase-level operations.
#[derive(Debug, Clone)]
pub struct EmbeddingStore {
    dim: usize,
    vocab: FxHashMap<String, u32>,
    data: Vec<f32>,
}

impl EmbeddingStore {
    /// Empty store of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self { dim, vocab: FxHashMap::default(), data: Vec::new() }
    }

    /// Dimension of stored vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.vocab.len()
    }

    /// True when no words are stored.
    pub fn is_empty(&self) -> bool {
        self.vocab.is_empty()
    }

    /// Insert (or overwrite) a word vector.
    ///
    /// # Panics
    /// Panics if `vec.len() != dim`.
    pub fn insert(&mut self, word: &str, vec: &[f32]) {
        assert_eq!(vec.len(), self.dim, "vector dimension mismatch");
        let key = word.to_lowercase();
        match self.vocab.get(&key) {
            Some(&row) => {
                let start = row as usize * self.dim;
                self.data[start..start + self.dim].copy_from_slice(vec);
            }
            None => {
                let row = self.vocab.len() as u32;
                self.vocab.insert(key, row);
                self.data.extend_from_slice(vec);
            }
        }
    }

    /// The vector of `word`, if present.
    pub fn get(&self, word: &str) -> Option<&[f32]> {
        self.vocab.get(&word.to_lowercase()).map(|&row| {
            let start = row as usize * self.dim;
            &self.data[start..start + self.dim]
        })
    }

    /// Mutable access (used by retrofitting).
    pub fn get_mut(&mut self, word: &str) -> Option<&mut [f32]> {
        let dim = self.dim;
        let row = self.vocab.get(&word.to_lowercase()).copied()?;
        let start = row as usize * dim;
        Some(&mut self.data[start..start + dim])
    }

    /// Iterate over `(word, vector)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[f32])> {
        self.vocab.iter().map(move |(w, &row)| {
            let start = row as usize * self.dim;
            (w.as_str(), &self.data[start..start + self.dim])
        })
    }

    /// Phrase embedding: the average of the vectors of its known words
    /// (paper §3.1.3). `None` if no word is known.
    pub fn phrase(&self, phrase: &str) -> Option<Vec<f32>> {
        let mut acc = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for tok in tokenize(phrase) {
            if let Some(v) = self.get(&tok) {
                for (a, x) in acc.iter_mut().zip(v) {
                    *a += x;
                }
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        for a in &mut acc {
            *a /= n as f32;
        }
        Some(acc)
    }

    /// `Sim_emb(a, b)`: cosine of the phrase embeddings mapped to
    /// `[0, 1]`. Phrases with no known words score `0.5` against anything
    /// (maximally uninformative, the midpoint of the cosine01 range).
    pub fn sim(&self, a: &str, b: &str) -> f64 {
        match (self.phrase(a), self.phrase(b)) {
            (Some(va), Some(vb)) => cosine01(&va, &vb),
            _ => 0.5,
        }
    }

    /// Normalize every stored vector to unit length.
    pub fn normalize_all(&mut self) {
        for chunk in self.data.chunks_mut(self.dim) {
            normalize(chunk);
        }
    }

    /// Serialize into a writer: `dim:u32, n:u32, then per word
    /// (len:u16, utf8 bytes, dim·f32 little-endian)`.
    pub fn save<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(8 + self.data.len() * 4);
        buf.put_u32_le(self.dim as u32);
        buf.put_u32_le(self.vocab.len() as u32);
        // Deterministic order: sort words.
        let mut words: Vec<(&String, &u32)> = self.vocab.iter().collect();
        words.sort();
        for (word, &row) in words {
            let bytes = word.as_bytes();
            buf.put_u16_le(u16::try_from(bytes.len()).expect("word too long"));
            buf.put_slice(bytes);
            let start = row as usize * self.dim;
            for &x in &self.data[start..start + self.dim] {
                buf.put_f32_le(x);
            }
        }
        w.write_all(&buf)
    }

    /// Deserialize from a reader (inverse of [`EmbeddingStore::save`]).
    pub fn load<R: Read>(r: &mut R) -> std::io::Result<Self> {
        let mut raw = Vec::new();
        r.read_to_end(&mut raw)?;
        let mut buf = raw.as_slice();
        let fail =
            |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        if buf.remaining() < 8 {
            return Err(fail("truncated header"));
        }
        let dim = buf.get_u32_le() as usize;
        let n = buf.get_u32_le() as usize;
        if dim == 0 {
            return Err(fail("zero dimension"));
        }
        let mut store = EmbeddingStore::new(dim);
        let mut vec_buf = vec![0.0f32; dim];
        for _ in 0..n {
            if buf.remaining() < 2 {
                return Err(fail("truncated word length"));
            }
            let len = buf.get_u16_le() as usize;
            if buf.remaining() < len + dim * 4 {
                return Err(fail("truncated record"));
            }
            let word = std::str::from_utf8(&buf[..len])
                .map_err(|_| fail("invalid utf8 word"))?
                .to_string();
            buf.advance(len);
            for x in vec_buf.iter_mut() {
                *x = buf.get_f32_le();
            }
            store.insert(&word, &vec_buf);
        }
        Ok(store)
    }

    /// Deterministic pseudo-random store for tests and fallbacks: each
    /// word's vector is derived from a hash of the word and `seed`.
    pub fn hashed(dim: usize, words: &[&str], seed: u64) -> Self {
        let mut store = EmbeddingStore::new(dim);
        for word in words {
            let mut v = Vec::with_capacity(dim);
            let mut state = seed ^ fxhash_str(word);
            for _ in 0..dim {
                // xorshift64*
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let r = state.wrapping_mul(0x2545F4914F6CDD1D);
                v.push(((r >> 40) as f32 / (1u64 << 24) as f32) - 0.5);
            }
            store.insert(word, &v);
        }
        store
    }
}

fn fxhash_str(s: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = jocl_text::fx::FxHasher::default();
    s.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(3);
        s.insert("maryland", &[1.0, 0.0, 0.0]);
        s.insert("virginia", &[0.0, 1.0, 0.0]);
        s.insert("university", &[0.0, 0.0, 1.0]);
        s
    }

    #[test]
    fn insert_and_get() {
        let s = store();
        assert_eq!(s.get("maryland"), Some(&[1.0f32, 0.0, 0.0][..]));
        assert_eq!(s.get("MARYLAND"), s.get("maryland"));
        assert!(s.get("unknown").is_none());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn overwrite_keeps_len() {
        let mut s = store();
        s.insert("maryland", &[0.5, 0.5, 0.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get("maryland"), Some(&[0.5f32, 0.5, 0.0][..]));
    }

    #[test]
    fn phrase_is_word_average() {
        let s = store();
        let p = s.phrase("University of Maryland").unwrap();
        // "of" unknown → average of university + maryland.
        assert_eq!(p, vec![0.5, 0.0, 0.5]);
    }

    #[test]
    fn phrase_unknown_words_is_none() {
        let s = store();
        assert!(s.phrase("quantum entanglement").is_none());
    }

    #[test]
    fn sim_range_and_identity() {
        let s = store();
        assert!((s.sim("maryland", "maryland") - 1.0).abs() < 1e-6);
        let x = s.sim("maryland university", "virginia university");
        assert!((0.0..=1.0).contains(&x));
        assert_eq!(s.sim("unknownword", "maryland"), 0.5);
    }

    #[test]
    fn save_load_roundtrip() {
        let s = store();
        let mut bytes = Vec::new();
        s.save(&mut bytes).unwrap();
        let loaded = EmbeddingStore::load(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.len(), s.len());
        assert_eq!(loaded.dim(), s.dim());
        for (w, v) in s.iter() {
            assert_eq!(loaded.get(w), Some(v));
        }
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(EmbeddingStore::load(&mut &b"xx"[..]).is_err());
        let mut bytes = Vec::new();
        store().save(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(EmbeddingStore::load(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn hashed_store_is_deterministic() {
        let a = EmbeddingStore::hashed(8, &["x", "y"], 42);
        let b = EmbeddingStore::hashed(8, &["x", "y"], 42);
        assert_eq!(a.get("x"), b.get("x"));
        let c = EmbeddingStore::hashed(8, &["x", "y"], 43);
        assert_ne!(a.get("x"), c.get("x"));
    }

    #[test]
    fn normalize_all_unit_length() {
        let mut s = store();
        s.insert("big", &[3.0, 4.0, 0.0]);
        s.normalize_all();
        let v = s.get("big").unwrap();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut s = store();
        s.insert("bad", &[1.0]);
    }
}
