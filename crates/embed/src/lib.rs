#![forbid(unsafe_code)]
//! # jocl-embed
//!
//! Word-embedding substrate for the JOCL reproduction.
//!
//! The paper's `f_emb` signal (§3.1.3) uses fastText vectors trained on
//! Common Crawl; offline we train our own:
//!
//! * [`sgns`] — a from-scratch **skip-gram with negative sampling**
//!   (word2vec) trainer. The data generator emits a corpus in which
//!   aliases of the same entity and paraphrases of the same relation
//!   appear in interchangeable contexts, so the trained vectors exhibit
//!   exactly the distributional property the paper relies on ("the
//!   meaning of a word is captured by the contexts where it often
//!   appears").
//! * [`store`] — an [`EmbeddingStore`] mapping words to dense `f32`
//!   vectors with phrase embedding by word averaging ("for a NP which
//!   contains several words, we average the vectors of all the single
//!   words in the phrase", §3.1.3) and cosine similarity.
//! * [`retrofit`] — Faruqui-style retrofitting of vectors toward a
//!   semantic lexicon, the mechanism our CESI baseline uses to inject
//!   side information into embeddings.
//! * [`vector`] — the small dense-vector kernel (dot, norm, cosine, axpy).

pub mod retrofit;
pub mod sgns;
pub mod store;
pub mod vector;

pub use retrofit::{retrofit, RetrofitOptions};
pub use sgns::{train_sgns, SgnsOptions};
pub use store::EmbeddingStore;
pub use vector::cosine;
