//! Retrofitting embeddings to a semantic lexicon (Faruqui et al., 2015).
//!
//! Our CESI baseline (paper §4.2.1) must "learn embeddings of NPs and RPs
//! leveraging side information in a principled manner". CESI's original
//! objective jointly optimizes distributional similarity and side-
//! information constraints; retrofitting implements the same idea as a
//! post-hoc quadratic refinement:
//!
//! ```text
//! q_i ← (α · q̂_i + β · Σ_{j ∈ N(i)} q_j) / (α + β · |N(i)|)
//! ```
//!
//! where `q̂_i` is the distributional vector and `N(i)` are lexicon
//! neighbors (PPDB partners, same-entity hints, …). A handful of
//! iterations converges (the update is a contraction).

use crate::store::EmbeddingStore;

/// Options for [`retrofit`].
#[derive(Debug, Clone)]
pub struct RetrofitOptions {
    /// Weight of the original (distributional) vector.
    pub alpha: f64,
    /// Weight of each lexicon neighbor.
    pub beta: f64,
    /// Update sweeps.
    pub iterations: usize,
}

impl Default for RetrofitOptions {
    fn default() -> Self {
        Self { alpha: 1.0, beta: 1.0, iterations: 10 }
    }
}

/// Retrofit `store` in place toward the lexicon `edges` (pairs of keys
/// that should be similar). Keys missing from the store are ignored.
pub fn retrofit(store: &mut EmbeddingStore, edges: &[(String, String)], opts: &RetrofitOptions) {
    // Snapshot original vectors and adjacency over present keys.
    let keys: Vec<String> = {
        let mut k: Vec<String> = store.iter().map(|(w, _)| w.to_string()).collect();
        k.sort();
        k
    };
    let index: std::collections::HashMap<&str, usize> =
        keys.iter().enumerate().map(|(i, k)| (k.as_str(), i)).collect();
    let originals: Vec<Vec<f32>> =
        keys.iter().map(|k| store.get(k).expect("key just listed").to_vec()).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); keys.len()];
    for (a, b) in edges {
        let (Some(&ia), Some(&ib)) =
            (index.get(a.to_lowercase().as_str()), index.get(b.to_lowercase().as_str()))
        else {
            continue;
        };
        if ia == ib {
            continue;
        }
        adj[ia].push(ib);
        adj[ib].push(ia);
    }
    let dim = store.dim();
    let mut current = originals.clone();
    for _ in 0..opts.iterations {
        for i in 0..keys.len() {
            if adj[i].is_empty() {
                continue;
            }
            let denom = opts.alpha + opts.beta * adj[i].len() as f64;
            let mut next = vec![0.0f32; dim];
            for (d, n) in next.iter_mut().enumerate() {
                let mut acc = opts.alpha * originals[i][d] as f64;
                for &j in &adj[i] {
                    acc += opts.beta * current[j][d] as f64;
                }
                *n = (acc / denom) as f32;
            }
            current[i] = next;
        }
    }
    for (i, k) in keys.iter().enumerate() {
        store.insert(k, &current[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::cosine;

    fn base_store() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(2);
        s.insert("umd", &[1.0, 0.0]);
        s.insert("university of maryland", &[0.0, 1.0]);
        s.insert("unrelated", &[-1.0, 0.0]);
        s
    }

    #[test]
    fn edges_pull_vectors_together() {
        let mut s = base_store();
        let before = cosine(s.get("umd").unwrap(), s.get("university of maryland").unwrap());
        retrofit(
            &mut s,
            &[("umd".into(), "university of maryland".into())],
            &RetrofitOptions::default(),
        );
        let after = cosine(s.get("umd").unwrap(), s.get("university of maryland").unwrap());
        assert!(after > before + 0.3, "before {before}, after {after}");
    }

    #[test]
    fn untouched_words_keep_vectors() {
        let mut s = base_store();
        retrofit(
            &mut s,
            &[("umd".into(), "university of maryland".into())],
            &RetrofitOptions::default(),
        );
        assert_eq!(s.get("unrelated"), Some(&[-1.0f32, 0.0][..]));
    }

    #[test]
    fn missing_keys_are_ignored() {
        let mut s = base_store();
        retrofit(&mut s, &[("umd".into(), "nonexistent".into())], &RetrofitOptions::default());
        assert_eq!(s.get("umd"), Some(&[1.0f32, 0.0][..]));
    }

    #[test]
    fn alpha_anchors_originals() {
        // With huge alpha, retrofitting barely moves vectors.
        let mut s = base_store();
        retrofit(
            &mut s,
            &[("umd".into(), "university of maryland".into())],
            &RetrofitOptions { alpha: 1e6, beta: 1.0, iterations: 10 },
        );
        let v = s.get("umd").unwrap();
        assert!((v[0] - 1.0).abs() < 1e-3 && v[1].abs() < 1e-3);
    }

    #[test]
    fn self_edges_are_noops() {
        let mut s = base_store();
        retrofit(&mut s, &[("umd".into(), "umd".into())], &RetrofitOptions::default());
        assert_eq!(s.get("umd"), Some(&[1.0f32, 0.0][..]));
    }

    #[test]
    fn convergence_is_stable() {
        let mut s1 = base_store();
        let edges = vec![("umd".to_string(), "university of maryland".to_string())];
        retrofit(&mut s1, &edges, &RetrofitOptions { iterations: 50, ..Default::default() });
        let mut s2 = base_store();
        retrofit(&mut s2, &edges, &RetrofitOptions { iterations: 51, ..Default::default() });
        let v1 = s1.get("umd").unwrap();
        let v2 = s2.get("umd").unwrap();
        for (a, b) in v1.iter().zip(v2) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
