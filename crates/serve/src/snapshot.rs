//! Snapshot files: the durable envelope around
//! [`IncrementalJocl::export_state`].
//!
//! ```text
//! ┌──────────────────────────────┐
//! │ magic  "JOCLSNP1"            │  8 bytes — format + version in one
//! │ config fingerprint section   │  named scalars, checked field by field
//! │ payload length + payload     │  IncrementalJocl::export_state bytes
//! │ FNV-1a checksum of payload   │  torn/corrupt writes fail loudly
//! └──────────────────────────────┘
//! ```
//!
//! Restore failures are **operational** errors: every one is a typed
//! [`KbError`] wrapped with the offending file's path
//! ([`KbError::WithPath`], the same pattern `jocl_core::persist` uses
//! for weight files), so an operator greps the path out of the error —
//! never a panic, never silently wrong state. The config fingerprint
//! pins every scalar that changes inference or decode (variant,
//! features, blocking caps, LBP tolerances, candidate options…); thread
//! counts are deliberately excluded — results are thread-invariant, and
//! restoring on a box with different parallelism is the point of the
//! exercise.

use jocl_core::{IncrementalJocl, JoclConfig, Signals};
use jocl_kb::snap::{fnv1a, SnapReader, SnapWriter};
use jocl_kb::{Ckb, KbError};
use std::path::Path;

/// File magic; the trailing digit is the format version.
const MAGIC: &[u8; 8] = b"JOCLSNP1";

/// The config scalars a snapshot is only valid under, as named values.
/// Floats are fingerprinted by bit pattern: "almost the same tolerance"
/// is not the same fixed point.
fn fingerprint(config: &JoclConfig) -> Vec<(&'static str, u64)> {
    let variant = match config.variant {
        jocl_core::Variant::Full => 0u64,
        jocl_core::Variant::CanoOnly => 1,
        jocl_core::Variant::LinkOnly => 2,
        jocl_core::Variant::NoConsistency => 3,
    };
    let features = match config.features {
        jocl_core::FeatureSet::Single => 0u64,
        jocl_core::FeatureSet::Double => 1,
        jocl_core::FeatureSet::All => 2,
    };
    let mode = match config.lbp.mode {
        jocl_core::ScheduleMode::Synchronous => 0u64,
        jocl_core::ScheduleMode::Residual => 1,
    };
    // Weights are part of the configuration a session is only valid
    // under: the snapshot carries the *active* params, but a later
    // compaction rebuilds the session from `config.pretrained_params` —
    // restoring under different weights must fail at restore time, not
    // silently switch weight sets at the next compaction.
    let pretrained = match &config.pretrained_params {
        None => 0u64,
        Some(p) => {
            let mut w = SnapWriter::new();
            w.usize(p.num_groups());
            for g in 0..p.num_groups() {
                w.f64_slice(p.group(g));
            }
            fnv1a(&w.into_bytes())
        }
    };
    vec![
        ("variant", variant),
        ("features", features),
        ("pretrained_params", pretrained),
        ("blocking_threshold", config.blocking_threshold.to_bits()),
        ("max_triangles", config.max_triangles as u64),
        ("max_group_clique", config.max_group_clique as u64),
        ("cross_cap", config.cross_cap as u64),
        ("merge_by_link", u64::from(config.merge_by_link)),
        ("lbp_max_iters", config.lbp.max_iters as u64),
        ("lbp_tol", config.lbp.tol.to_bits()),
        ("lbp_damping", config.lbp.damping.to_bits()),
        ("lbp_mode", mode),
        ("lbp_residual_batch", config.lbp.residual_batch as u64),
        ("top_k_entities", config.candidates.top_k_entities as u64),
        ("top_k_relations", config.candidates.top_k_relations as u64),
        ("cand_min_score", config.candidates.min_score.to_bits()),
        ("cand_lexical_weight", config.candidates.lexical_weight.to_bits()),
        ("seed", config.seed),
        // The committed-message representation is part of the wire
        // format: a quantized arena cannot restore into an exact
        // session (or vice versa), so mismatches must fail at the
        // envelope, naming the field, not deep in the MSG section.
        (
            "message_store",
            match config.message_store {
                jocl_fg::MessageStore::Exact => 0u64,
                jocl_fg::MessageStore::Quantized => 1,
            },
        ),
        // The imported side table shapes the factor graph itself (extra
        // S1/S2 potentials, appended candidates), so a session is only
        // valid under the exact table it was built with. `None` and an
        // empty table are the same inert configuration — both pin 0.
        (
            "side_info",
            match &config.side_info {
                Some(s) if !s.is_empty() => s.fingerprint(),
                _ => 0,
            },
        ),
    ]
}

/// Serialize a session into snapshot-file bytes (envelope + payload).
pub fn session_to_bytes(session: &mut IncrementalJocl<'_>) -> Vec<u8> {
    let payload = session.export_state();
    let mut w = SnapWriter::new();
    w.tag("FPRT");
    let fp = fingerprint(session.config());
    w.usize(fp.len());
    for (name, value) in fp {
        w.str(name);
        w.u64(value);
    }
    w.usize(payload.len());
    let mut bytes = Vec::with_capacity(MAGIC.len() + w.len() + payload.len() + 8);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&w.into_bytes());
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    bytes
}

/// Rebuild a session from snapshot-file bytes under `config`.
pub fn session_from_bytes<'a>(
    bytes: &[u8],
    config: JoclConfig,
    ckb: &'a Ckb,
    signals: &'a Signals,
) -> Result<IncrementalJocl<'a>, KbError> {
    let corrupt = |offset: usize, msg: String| KbError::Snapshot { offset, msg };
    // Sub-readers report offsets relative to the slice they were handed;
    // shift them so every reported offset is **file-absolute** (the
    // number an operator can hexdump at).
    let shift = |e: KbError, by: usize| match e {
        KbError::Snapshot { offset, msg } => KbError::Snapshot { offset: offset + by, msg },
        e => e,
    };
    if bytes.len() < MAGIC.len() {
        return Err(corrupt(0, "file shorter than the magic header".into()));
    }
    let (magic, rest) = bytes.split_at(MAGIC.len());
    if magic != MAGIC {
        return Err(corrupt(
            0,
            format!(
                "bad magic {:?} (expected {:?} — not a snapshot, or a different format version)",
                String::from_utf8_lossy(magic),
                String::from_utf8_lossy(MAGIC)
            ),
        ));
    }
    let mut r = SnapReader::new(rest);
    let envelope = (|r: &mut SnapReader<'_>| -> Result<usize, KbError> {
        r.expect_tag("FPRT")?;
        let expected = fingerprint(&config);
        let n = r.seq_len(16)?;
        if n != expected.len() {
            return Err(r.corrupt(format!(
                "fingerprint has {n} fields, this build expects {}",
                expected.len()
            )));
        }
        for (name, value) in &expected {
            let got_name = r.str()?;
            let got_value = r.u64()?;
            if got_name != *name {
                return Err(r.corrupt(format!(
                    "fingerprint field {got_name:?} where {name:?} was expected"
                )));
            }
            if got_value != *value {
                return Err(r.corrupt(format!(
                    "config mismatch on {name}: snapshot has {got_value}, the supplied config \
                     has {value} — restore under the configuration the session was running"
                )));
            }
        }
        r.seq_len(1)
    })(&mut r)
    .map_err(|e| shift(e, MAGIC.len()))?;
    let payload_len = envelope;
    let payload_start = MAGIC.len() + r.offset();
    let payload_end = payload_start + payload_len;
    if payload_end + 8 != bytes.len() {
        return Err(corrupt(
            payload_start,
            format!(
                "payload of {payload_len} bytes + checksum does not fill the file ({} bytes)",
                bytes.len()
            ),
        ));
    }
    let payload = &bytes[payload_start..payload_end];
    let stored = u64::from_le_bytes(bytes[payload_end..].try_into().expect("8 bytes"));
    let actual = fnv1a(payload);
    if stored != actual {
        return Err(corrupt(
            payload_end,
            format!("checksum mismatch (stored {stored:#018x}, computed {actual:#018x}) — torn or corrupted write"),
        ));
    }
    IncrementalJocl::import_state(payload, config, ckb, signals)
        .map_err(|e| shift(e, payload_start))
}

/// Write a session snapshot to `path` (atomically: unique temp file +
/// rename, so a crash mid-write never leaves a half-snapshot under the
/// final name, and concurrent writers — other processes or other
/// sessions in this one — never share a temp file). Returns the byte
/// size. Failures name the file.
pub fn save_session(session: &mut IncrementalJocl<'_>, path: &Path) -> Result<u64, KbError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let bytes = session_to_bytes(session);
    let tmp = path.with_extension(format!(
        "tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write = || -> Result<(), std::io::Error> {
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)
    };
    write().map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        KbError::from(e).with_path(path)
    })?;
    Ok(bytes.len() as u64)
}

/// Read a session snapshot from `path`. Every failure — I/O, bad magic,
/// fingerprint mismatch, checksum, payload corruption — is wrapped with
/// the file path.
pub fn load_session<'a>(
    path: &Path,
    config: JoclConfig,
    ckb: &'a Ckb,
    signals: &'a Signals,
) -> Result<IncrementalJocl<'a>, KbError> {
    let bytes = std::fs::read(path).map_err(|e| KbError::from(e).with_path(path))?;
    session_from_bytes(&bytes, config, ckb, signals).map_err(|e| match e {
        // Already wrapped (shouldn't happen from byte-level parsing, but
        // don't double-wrap defensively).
        e @ KbError::WithPath { .. } => e,
        e => e.with_path(path),
    })
}
