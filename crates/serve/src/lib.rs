#![forbid(unsafe_code)]
//! # jocl-serve
//!
//! The durable serving subsystem (ROADMAP "deletion + revision deltas"
//! and "session persistence"): a [`ServeSession`] wraps the warm
//! incremental canonicalization session
//! ([`jocl_core::IncrementalJocl`]) into something a long-running
//! process can actually operate —
//!
//! * **full delta vocabulary** — [`DeltaOp::Add`], [`DeltaOp::Retract`]
//!   and [`DeltaOp::Revise`] flow through [`ServeSession::apply`];
//!   retractions tombstone their factors (the graph shrinks
//!   semantically while staying append-only physically) and the live
//!   decode keeps parity with a from-scratch batch run on the
//!   survivors;
//! * **automatic compaction** — tombstones accumulate wasted capacity;
//!   when the dead-factor density crosses
//!   [`ServeConfig::compact_threshold`], the session is rebuilt cold
//!   from the survivors (same decode, compact graph) and the delta that
//!   triggered it reports [`jocl_core::DeltaStats::compacted`];
//! * **warm snapshots** — [`ServeSession::snapshot_to`] /
//!   [`ServeSession::restore_from`] persist the entire session through
//!   the [`snapshot`] envelope (magic + config fingerprint + checksum
//!   around `IncrementalJocl::{export,import}_state`), so a restarted
//!   process resumes with **bitwise-identical** LBP messages instead of
//!   a cold rebuild;
//! * **queries** — [`ServeSession::live_view`] exposes the decoded
//!   output re-indexed over the live triples (the natural serving
//!   read), [`ServeSession::query_phrase`] answers "what cluster is
//!   this phrase in, and where does it link" per mention.
//!
//! The CKB, the frozen [`Signals`](jocl_core::Signals) and the
//! [`JoclConfig`] are shared serving resources provided at open/restore
//! time, exactly like pretrained weights in the batch serving path; the
//! snapshot fingerprints the config so a restore under a different
//! configuration fails loudly instead of silently diverging.
//!
//! The serve loop itself is transport-agnostic ([`engine::Engine`]
//! executes parsed [`protocol::Command`]s): the `serve` binary of
//! `jocl_bench` drives it from stdin or — with `JOCL_LISTEN` — behind
//! the [`net`] socket front-end, which serves concurrent reads from an
//! atomically-swapped [`view::ReadView`] while the single writer
//! applies deltas and feeds read replicas through the [`engine`]'s
//! replication log. The `serve_scale` and `serve_net` gates certify
//! retraction parity, warm-restore savings, replica bitwise parity and
//! serve-loop robustness at CI scale.

pub mod api;
pub mod engine;
pub mod net;
pub(crate) mod obs;
pub mod protocol;
pub mod snapshot;
pub mod view;

pub use api::{
    format_link, format_metrics, format_query, format_stats, parse_link, parse_link_target,
    parse_metrics, parse_query, parse_stats, LinkCandidate, LinkReport, LinkRequest, LinkTarget,
    MentionReport,
};
pub use engine::{Engine, EngineOptions, FeedRole};
pub use net::{ListenAddr, NetStats};
pub use protocol::{parse_command, Command, ErrCode, Response, TripleRef, WireError};
pub use view::{ReadView, SessionStats, SharedView};

use jocl_cluster::Clustering;
use jocl_core::{DeltaOp, DeltaOutput, IncrementalJocl, JoclConfig, JoclOutput, Signals};
use jocl_kb::{Ckb, EntityId, KbError, RelationId, TripleId};
use std::path::Path;

/// Serving-layer policy knobs (the model configuration stays in
/// [`JoclConfig`]). Construct via [`ServeConfig::builder`] — bins and
/// tests should not hand-assemble the struct, so new knobs can land
/// without touching every call site.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Tombstone (dead-factor) density above which
    /// [`ServeSession::apply`] compacts the session after the delta.
    /// Density never exceeds 1.0, so `f64::INFINITY` disables automatic
    /// compaction (manual [`ServeSession::compact`] still works).
    pub compact_threshold: f64,
    /// Minimum calibrated confidence a `link` candidate must reach to be
    /// reported (the request's own `threshold=` overrides it). `0.0`
    /// reports everything.
    pub link_threshold: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        // Past half the factors being tombstones, every sweep does more
        // dead work than live work — rebuild.
        Self { compact_threshold: 0.5, link_threshold: 0.0 }
    }
}

impl ServeConfig {
    /// Start from the defaults and override what you need.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder { config: Self::default() }
    }
}

/// Builder for [`ServeConfig`]; every setter validates its knob at
/// construction time, so a misconfigured serving plane fails before it
/// opens a session.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Set the auto-compaction density threshold (`f64::INFINITY`
    /// disables auto-compaction).
    ///
    /// # Panics
    /// Panics when the value is NaN or negative.
    pub fn compact_threshold(mut self, density: f64) -> Self {
        assert!(
            !density.is_nan() && density >= 0.0,
            "compact_threshold must be a non-negative density (or +inf to disable), got {density}"
        );
        self.config.compact_threshold = density;
        self
    }

    /// Set the default minimum `link` candidate confidence.
    ///
    /// # Panics
    /// Panics unless the value is finite and in `[0, 1]`.
    pub fn link_threshold(mut self, confidence: f64) -> Self {
        assert!(
            confidence.is_finite() && (0.0..=1.0).contains(&confidence),
            "link_threshold must be a confidence in [0, 1], got {confidence}"
        );
        self.config.link_threshold = confidence;
        self
    }

    /// Finish the configuration.
    pub fn build(self) -> ServeConfig {
        self.config
    }
}

/// The decoded serving state re-indexed over **live** triples: survivor
/// `k` is `triples[k]`, its mentions occupy the dense slots a batch run
/// on the survivors would give them (subject `2k`, object `2k+1`,
/// predicate `k`). This is both the natural read model for serving and
/// the exact shape of the batch-parity contract — compare it field by
/// field against a `Jocl` run on the survivors.
#[derive(Debug, Clone)]
pub struct LiveView {
    /// Live session triple ids, ascending.
    pub triples: Vec<TripleId>,
    /// Entity link per live NP mention (2 per live triple).
    pub np_links: Vec<Option<EntityId>>,
    /// Relation link per live RP mention.
    pub rp_links: Vec<Option<RelationId>>,
    /// Clustering over live NP mentions (canonical labels).
    pub np_clustering: Clustering,
    /// Clustering over live RP mentions.
    pub rp_clustering: Clustering,
}

/// A durable, restartable serving session.
#[derive(Debug)]
pub struct ServeSession<'a> {
    inner: IncrementalJocl<'a>,
    serve: ServeConfig,
    last: Option<JoclOutput>,
    /// Delta operations applied over the session's lifetime.
    pub ops_applied: u64,
    /// Automatic + manual compactions performed.
    pub compactions: u64,
}

impl<'a> ServeSession<'a> {
    /// Open a fresh session over shared serving resources.
    pub fn open(
        config: JoclConfig,
        serve: ServeConfig,
        ckb: &'a Ckb,
        signals: &'a Signals,
    ) -> Self {
        Self {
            inner: IncrementalJocl::new(config, ckb, signals),
            serve,
            last: None,
            ops_applied: 0,
            compactions: 0,
        }
    }

    /// Apply one delta of add/retract/revise operations; compacts
    /// afterwards when the tombstone density crossed the threshold
    /// (reported via `stats.compacted` — the decode is the same either
    /// way, that is the parity contract).
    pub fn apply(&mut self, ops: &[DeltaOp]) -> DeltaOutput {
        let mut out = self.inner.apply_ops(ops);
        self.ops_applied += ops.len() as u64;
        if self.inner.tombstone_density() > self.serve.compact_threshold {
            let compacted = self.inner.compact();
            self.compactions += 1;
            // Keep the op-level stats (what *this* delta did), but the
            // post-compaction decode and the flag.
            out.stats.compacted = true;
            out.output = compacted.output;
        }
        self.last = Some(Self::cache_output(&out.output));
        out
    }

    /// Convenience: apply a pure-append delta.
    pub fn add_all(&mut self, triples: &[jocl_kb::Triple]) -> DeltaOutput {
        let ops: Vec<DeltaOp> = triples.iter().cloned().map(DeltaOp::Add).collect();
        self.apply(&ops)
    }

    /// Rebuild cold from the survivors now, regardless of density.
    pub fn compact(&mut self) -> DeltaOutput {
        let out = self.inner.compact();
        self.compactions += 1;
        self.last = Some(Self::cache_output(&out.output));
        out
    }

    /// Clone the fields the read model actually serves (links +
    /// clusterings + diagnostics); the parameter vector attached for
    /// persistence is deliberately dropped — the session owns the live
    /// copy, and cloning it per delta would be pure heap churn.
    fn cache_output(out: &JoclOutput) -> JoclOutput {
        JoclOutput {
            np_clustering: out.np_clustering.clone(),
            rp_clustering: out.rp_clustering.clone(),
            np_links: out.np_links.clone(),
            rp_links: out.rp_links.clone(),
            learned_params: None,
            diagnostics: out.diagnostics.clone(),
        }
    }

    /// The wrapped incremental session (read access for stats/tests).
    pub fn session(&self) -> &IncrementalJocl<'a> {
        &self.inner
    }

    /// Mutable access to the wrapped session — state export and the
    /// lazily materialized OKB dedup index need `&mut`.
    pub fn session_mut(&mut self) -> &mut IncrementalJocl<'a> {
        &mut self.inner
    }

    /// The serving policy in force.
    pub fn serve_config(&self) -> &ServeConfig {
        &self.serve
    }

    /// The decode of the most recent delta (or restore), if any.
    pub fn last_output(&self) -> Option<&JoclOutput> {
        self.last.as_ref()
    }

    /// The live-indexed read model (see [`LiveView`]); `None` before the
    /// first delta.
    pub fn live_view(&self) -> Option<LiveView> {
        let out = self.last.as_ref()?;
        Some(view::live_view_of(self.inner.okb(), &|t| self.inner.is_live(t), out))
    }

    /// Every live mention whose phrase equals `phrase`
    /// (case-insensitively), with its cluster and link. Empty before the
    /// first delta or when nothing matches.
    pub fn query_phrase(&self, phrase: &str) -> Vec<MentionReport> {
        let Some(out) = self.last.as_ref() else { return Vec::new() };
        view::query_phrase_of(self.inner.okb(), &|t| self.inner.is_live(t), out, phrase)
    }

    /// Resolve a surface form (or a canonical URI) to ranked link
    /// candidates — see [`api`] for the target grammar, URI scheme and
    /// confidence calibration. Answers identically to
    /// [`ReadView::link`] over the same committed state; an imported
    /// side table ([`JoclConfig::side_info`]) contributes dictionary
    /// candidates even before the first delta.
    pub fn link(&self, req: &LinkRequest) -> LinkReport {
        let side = self.inner.config().side_info.as_deref().filter(|s| !s.is_empty());
        let ctx = api::CkbLinkContext::new(self.inner.ckb(), side);
        api::link_of(
            self.inner.okb(),
            &|t| self.inner.is_live(t),
            self.last.as_ref(),
            &ctx,
            req,
            self.serve.link_threshold,
        )
    }

    /// Persist the warm session to `path` (see [`snapshot`] for the file
    /// format). Returns the snapshot size in bytes. All failures carry
    /// the path ([`KbError::WithPath`]).
    pub fn snapshot_to(&mut self, path: &Path) -> Result<u64, KbError> {
        // The span lives here, NOT in `snapshot` — that module is a
        // designated determinism module (lint R4) and may not read the
        // clock; timing wraps the codec from outside.
        let _span = jocl_obs::span!("snapshot_save");
        snapshot::save_session(&mut self.inner, path)
    }

    /// Restore a session persisted with [`ServeSession::snapshot_to`].
    /// `config` must match the snapshot's fingerprint. The restored
    /// session resumes with bitwise-identical messages; its last decode
    /// is reproduced from the restored marginals **without inference**
    /// ([`IncrementalJocl::decode_current`] — even an
    /// unconverged-at-snapshot session restores untouched; the next real
    /// delta re-primes it), so queries work immediately.
    pub fn restore_from(
        path: &Path,
        config: JoclConfig,
        serve: ServeConfig,
        ckb: &'a Ckb,
        signals: &'a Signals,
    ) -> Result<Self, KbError> {
        let _span = jocl_obs::span!("snapshot_restore");
        let inner = snapshot::load_session(path, config, ckb, signals)?;
        let last =
            if inner.is_empty() { None } else { Some(Self::cache_output(&inner.decode_current())) };
        Ok(Self { inner, serve, last, ops_applied: 0, compactions: 0 })
    }
}
