//! The serving read model behind the networked front-end.
//!
//! A [`ServeSession`] is single-writer: every delta mutates the factor
//! graph in place, so readers cannot touch it while a write is in
//! flight. The network plane therefore serves queries from a
//! [`ReadView`] — an immutable capture of the last **committed** decode
//! (cloned OKB + live mask + cached output) — published through a
//! [`SharedView`]. Publication swaps one `Arc` pointer under a
//! short-lived lock; readers clone the `Arc` and then work entirely on
//! immutable data, so a view is observed either wholly pre-delta or
//! wholly post-delta. A torn view is structurally impossible — there is
//! no moment at which a reader holds half-updated state.
//!
//! The query/live-view logic itself lives in the free functions
//! [`live_view_of`] and [`query_phrase_of`], shared verbatim between
//! the in-place session reads ([`ServeSession::query_phrase`]) and the
//! captured view, so both planes answer identically by construction.

use crate::api::{self, LinkContext, LinkReport, LinkRequest, MentionReport};
use crate::{LiveView, ServeSession};
use jocl_cluster::Clustering;
use jocl_core::JoclOutput;
use jocl_kb::{EntityId, NpMention, NpSlot, Okb, RelationId, RpMention, TripleId};
use jocl_text::fx::FxHashMap;
use std::sync::{Arc, RwLock};

/// Session summary served by `stats` (both planes format the same
/// struct, so writer and view stats lines stay comparable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionStats {
    /// Total session triples (live + tombstoned).
    pub triples: usize,
    /// Live (non-retracted) triples.
    pub live: usize,
    /// Factor-graph variables.
    pub vars: usize,
    /// Factor-graph factors.
    pub factors: usize,
    /// Dead-factor density (compaction pressure).
    pub tombstone_density: f64,
    /// Delta operations applied over the session's lifetime.
    pub ops_applied: u64,
    /// Automatic + manual compactions.
    pub compactions: u64,
    /// Cumulative LBP message updates.
    pub total_message_updates: u64,
    /// Committed-write version the stats describe (0 = pristine).
    pub version: u64,
    /// Whether the serving plane is a read replica.
    pub replica: bool,
    /// Accounted resident heap bytes of the session state (OKB,
    /// blocking index, graph plan, committed messages, marginals).
    pub heap_bytes: usize,
    /// Milliseconds since the serving process started (monotonic —
    /// never a wall-clock read). Sourced from the metrics plane by the
    /// engine; `0` as captured here.
    pub uptime_ms: u64,
    /// Requests answered on this plane (`metrics` reads excluded —
    /// they record nothing, by the byte-stability contract). Sourced
    /// from the registry by the engine; `0` as captured here.
    pub requests: u64,
    /// `ERR` responses sent on this plane. Sourced from the registry by
    /// the engine; `0` as captured here.
    pub errors: u64,
    /// Duration of the most recent compaction (any plane in this
    /// process), `0` before the first. Sourced from the registry by the
    /// engine; `0` as captured here.
    pub last_compaction_ms: u64,
}

impl SessionStats {
    /// Capture the summary of a session at write version `version`.
    pub fn of(session: &ServeSession<'_>, version: u64, replica: bool) -> Self {
        let inner = session.session();
        Self {
            triples: inner.len(),
            live: inner.num_live(),
            vars: inner.num_vars(),
            factors: inner.num_factors(),
            tombstone_density: inner.tombstone_density(),
            ops_applied: session.ops_applied,
            compactions: session.compactions,
            total_message_updates: inner.total_message_updates,
            version,
            replica,
            heap_bytes: inner.heap_bytes(),
            uptime_ms: 0,
            requests: 0,
            errors: 0,
            last_compaction_ms: 0,
        }
    }
}

/// An immutable capture of a committed decode, self-contained enough to
/// answer `query` and `stats` without touching the live session.
#[derive(Debug, Clone)]
pub struct ReadView {
    okb: Okb,
    live: Vec<bool>,
    output: Option<JoclOutput>,
    /// Curated names for every entity id the decode or side table
    /// references — captured so `link` answers without touching the
    /// shared CKB (the view must stay self-contained).
    entity_names: FxHashMap<u32, String>,
    relation_names: FxHashMap<u32, String>,
    /// Side-table rows pre-resolved to curated ids, keyed by the
    /// imported (lowercased) surface form.
    side_entities: FxHashMap<String, Vec<(EntityId, f64)>>,
    side_relations: FxHashMap<String, Vec<(RelationId, f64)>>,
    link_threshold: f64,
    /// Summary at capture time (carries the view's version).
    pub stats: SessionStats,
}

impl ReadView {
    /// Capture the current committed state of `session`.
    pub fn capture(session: &ServeSession<'_>, version: u64, replica: bool) -> Self {
        let inner = session.session();
        let ckb = inner.ckb();
        let live: Vec<bool> = (0..inner.len() as u32).map(|i| inner.is_live(TripleId(i))).collect();
        let mut entity_names: FxHashMap<u32, String> = FxHashMap::default();
        let mut relation_names: FxHashMap<u32, String> = FxHashMap::default();
        if let Some(out) = session.last_output() {
            for e in out.np_links.iter().flatten() {
                entity_names.entry(e.0).or_insert_with(|| ckb.entity(*e).name.clone());
            }
            for r in out.rp_links.iter().flatten() {
                relation_names.entry(r.0).or_insert_with(|| ckb.relation(*r).name.clone());
            }
        }
        let mut side_entities: FxHashMap<String, Vec<(EntityId, f64)>> = FxHashMap::default();
        let mut side_relations: FxHashMap<String, Vec<(RelationId, f64)>> = FxHashMap::default();
        if let Some(side) = inner.config().side_info.as_deref().filter(|s| !s.is_empty()) {
            for (kind, surface, target, weight) in side.canonical_rows() {
                if kind == 'e' {
                    if let Some(id) = ckb.entity_by_name(target) {
                        entity_names.entry(id.0).or_insert_with(|| ckb.entity(id).name.clone());
                        side_entities.entry(surface.to_string()).or_default().push((id, weight));
                    }
                } else if let Some(id) = ckb.relation_by_name(target) {
                    relation_names.entry(id.0).or_insert_with(|| ckb.relation(id).name.clone());
                    side_relations.entry(surface.to_string()).or_default().push((id, weight));
                }
            }
        }
        Self {
            okb: inner.okb().clone(),
            live,
            output: session.last_output().cloned(),
            entity_names,
            relation_names,
            side_entities,
            side_relations,
            link_threshold: session.serve_config().link_threshold,
            stats: SessionStats::of(session, version, replica),
        }
    }

    fn is_live(&self, t: TripleId) -> bool {
        self.live.get(t.0 as usize).copied().unwrap_or(false)
    }

    /// The live-indexed read model; `None` before the first delta.
    pub fn live_view(&self) -> Option<LiveView> {
        let out = self.output.as_ref()?;
        Some(live_view_of(&self.okb, &|t| self.is_live(t), out))
    }

    /// Every live mention whose phrase equals `phrase`
    /// (case-insensitively). Empty before the first delta.
    pub fn query_phrase(&self, phrase: &str) -> Vec<MentionReport> {
        let Some(out) = self.output.as_ref() else { return Vec::new() };
        query_phrase_of(&self.okb, &|t| self.is_live(t), out, phrase)
    }

    /// Resolve a link request against this committed view — the same
    /// [`api::link_of`] the live session uses, so writer, stdin loop
    /// and replica answer identically over identical state.
    pub fn link(&self, req: &LinkRequest) -> LinkReport {
        api::link_of(
            &self.okb,
            &|t| self.is_live(t),
            self.output.as_ref(),
            self,
            req,
            self.link_threshold,
        )
    }
}

impl LinkContext for ReadView {
    fn entity_name(&self, id: EntityId) -> Option<String> {
        self.entity_names.get(&id.0).cloned()
    }

    fn relation_name(&self, id: RelationId) -> Option<String> {
        self.relation_names.get(&id.0).cloned()
    }

    fn side_entities(&self, surface: &str) -> Vec<(EntityId, f64)> {
        api::with_determiner_fallback(surface, |key| {
            self.side_entities.get(key.trim()).cloned().unwrap_or_default()
        })
    }

    fn side_relations(&self, surface: &str) -> Vec<(RelationId, f64)> {
        self.side_relations.get(surface.trim()).cloned().unwrap_or_default()
    }
}

/// The atomically-swapped published view: the writer [`store`]s a fresh
/// capture after each committed write, readers [`load`] an `Arc` and
/// never block each other or the writer for longer than the pointer
/// swap.
///
/// [`store`]: SharedView::store
/// [`load`]: SharedView::load
#[derive(Debug)]
pub struct SharedView(RwLock<Arc<ReadView>>);

impl SharedView {
    /// Publish an initial view.
    pub fn new(view: ReadView) -> Self {
        Self(RwLock::new(Arc::new(view)))
    }

    /// The current committed view. The lock is held only for the `Arc`
    /// clone; all query work happens on the returned immutable view.
    pub fn load(&self) -> Arc<ReadView> {
        // A poisoned lock only means a reader/writer panicked while
        // holding it for the pointer copy — the Arc itself is intact.
        match self.0.read() {
            Ok(g) => Arc::clone(&g),
            Err(p) => Arc::clone(&p.into_inner()),
        }
    }

    /// Publish a new committed view (single writer).
    pub fn store(&self, view: ReadView) {
        let arc = Arc::new(view);
        match self.0.write() {
            Ok(mut g) => *g = arc,
            Err(p) => *p.into_inner() = arc,
        }
    }
}

/// Shared implementation of [`ServeSession::live_view`]: re-index the
/// decode over the live triples (survivor `k` gets the dense slots a
/// batch run on the survivors would assign).
pub(crate) fn live_view_of(
    okb: &Okb,
    is_live: &dyn Fn(TripleId) -> bool,
    out: &JoclOutput,
) -> LiveView {
    let triples: Vec<TripleId> =
        (0..okb.len() as u32).map(TripleId).filter(|&t| is_live(t)).collect();
    let mut np_links = Vec::with_capacity(triples.len() * 2);
    let mut rp_links = Vec::with_capacity(triples.len());
    let mut np_labels = Vec::with_capacity(triples.len() * 2);
    let mut rp_labels = Vec::with_capacity(triples.len());
    for &t in &triples {
        for slot in [NpSlot::Subject, NpSlot::Object] {
            let d = NpMention { triple: t, slot }.dense();
            np_links.push(out.np_links[d]);
            np_labels.push(out.np_clustering.cluster_of(d));
        }
        let d = RpMention(t).dense();
        rp_links.push(out.rp_links[d]);
        rp_labels.push(out.rp_clustering.cluster_of(d));
    }
    LiveView {
        triples,
        np_links,
        rp_links,
        np_clustering: Clustering::from_labels(&np_labels),
        rp_clustering: Clustering::from_labels(&rp_labels),
    }
}

/// Shared implementation of [`ServeSession::query_phrase`].
pub(crate) fn query_phrase_of(
    okb: &Okb,
    is_live: &dyn Fn(TripleId) -> bool,
    out: &JoclOutput,
    phrase: &str,
) -> Vec<MentionReport> {
    let needle = phrase.trim().to_lowercase();
    let mut reports = Vec::new();
    // Live cluster membership, built in one pass per family (not one
    // scan per matching mention).
    let mut np_members: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
    for d in 0..okb.num_np_mentions() {
        if is_live(NpMention::from_dense(d).triple) {
            np_members.entry(out.np_clustering.cluster_of(d)).or_default().push(d);
        }
    }
    let mut rp_members: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
    for d in 0..okb.num_rp_mentions() {
        if is_live(TripleId(d as u32)) {
            rp_members.entry(out.rp_clustering.cluster_of(d)).or_default().push(d);
        }
    }
    for (t, triple) in okb.triples() {
        if !is_live(t) {
            continue;
        }
        for (slot, role, text) in [
            (NpSlot::Subject, "subject", &triple.subject),
            (NpSlot::Object, "object", &triple.object),
        ] {
            if text.to_lowercase() != needle {
                continue;
            }
            let d = NpMention { triple: t, slot }.dense();
            let members = &np_members[&out.np_clustering.cluster_of(d)];
            let mut phrases: Vec<String> = members
                .iter()
                .map(|&m| okb.np_phrase(NpMention::from_dense(m)).to_string())
                .collect();
            phrases.sort_unstable();
            phrases.dedup();
            reports.push(MentionReport {
                triple: t,
                role,
                phrase: text.clone(),
                cluster_size: members.len(),
                cluster_phrases: phrases,
                entity: out.np_links[d],
                relation: None,
            });
        }
        if triple.predicate.to_lowercase() == needle {
            let d = RpMention(t).dense();
            let members = &rp_members[&out.rp_clustering.cluster_of(d)];
            let mut phrases: Vec<String> = members
                .iter()
                .map(|&m| okb.rp_phrase(RpMention(TripleId(m as u32))).to_string())
                .collect();
            phrases.sort_unstable();
            phrases.dedup();
            reports.push(MentionReport {
                triple: t,
                role: "predicate",
                phrase: triple.predicate.clone(),
                cluster_size: members.len(),
                cluster_phrases: phrases,
                entity: None,
                relation: out.rp_links[d],
            });
        }
    }
    reports
}
