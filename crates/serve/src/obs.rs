//! Serving-plane metric handles, registered once per plane and cached
//! in statics so neither the writer loop nor the socket readers ever
//! touch the registry mutex per request.
//!
//! Both planes of a colocated writer/replica test process share one
//! global registry, so every serving metric carries a
//! `plane="writer"|"replica"` label — the stats of one plane never leak
//! into the other's.
//!
//! The one deliberate hole: the `metrics` command itself records
//! **nothing** (no request counter, no latency sample). A metrics read
//! must not change the next metrics read, or two reads of an idle
//! server could never be byte-identical — which is exactly the
//! determinism the `obs_scale` gate certifies.

use jocl_obs::{Counter, Gauge, Histogram, Stopwatch};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::protocol::{Command, ErrCode, Response};

/// Every command word that records a per-command latency series
/// (`metrics` is deliberately absent — see the module docs).
const COMMAND_WORDS: [&str; 12] = [
    "ingest", "add", "retract", "revise", "query", "link", "stats", "snapshot", "restore",
    "compact", "quit", "shutdown",
];

/// Every `ERR` code word, pre-registered so the metric inventory is
/// stable from the first snapshot (lazy registration would make the
/// exposition grow between reads).
const ERR_CODES: [ErrCode; 7] = [
    ErrCode::Parse,
    ErrCode::Unknown,
    ErrCode::BadId,
    ErrCode::ReadOnly,
    ErrCode::Io,
    ErrCode::Snapshot,
    ErrCode::Panic,
];

/// The stable word a command records under.
pub(crate) fn command_word(cmd: &Command) -> Option<&'static str> {
    Some(match cmd {
        Command::Ingest(_) => "ingest",
        Command::Add(_) => "add",
        Command::Retract(_) => "retract",
        Command::Revise { .. } => "revise",
        Command::Query(_) => "query",
        Command::Link(_) => "link",
        Command::Stats => "stats",
        Command::Snapshot(_) => "snapshot",
        Command::Restore(_) => "restore",
        Command::Compact => "compact",
        Command::Quit => "quit",
        Command::Shutdown => "shutdown",
        // Self-observation would break metrics-read byte-stability.
        Command::Metrics => return None,
    })
}

/// One serving plane's cached handles.
pub(crate) struct PlaneMetrics {
    /// Requests answered (every command except `metrics`).
    pub requests_total: Arc<Counter>,
    /// `ERR` responses sent.
    pub errors_total: Arc<Counter>,
    /// Per-command request latency.
    request_ns: HashMap<&'static str, Arc<Histogram>>,
    /// Per-code `ERR` counts.
    err_total: HashMap<&'static str, Arc<Counter>>,
    /// Replication-log byte offset this plane has incorporated.
    pub feed_offset: Arc<Gauge>,
    /// Follower only: writer log end minus this plane's cursor.
    pub replication_lag: Arc<Gauge>,
    /// Warm snapshot save/restore latency.
    pub snapshot_save_ns: Arc<Histogram>,
    pub snapshot_restore_ns: Arc<Histogram>,
}

impl PlaneMetrics {
    fn register(plane: &'static str) -> Self {
        let reg = jocl_obs::registry();
        let labels = [("plane", plane)];
        let request_ns = COMMAND_WORDS
            .iter()
            .map(|&cmd| (cmd, reg.histogram("jocl_request_ns", &[("cmd", cmd), ("plane", plane)])))
            .collect();
        let err_total = ERR_CODES
            .iter()
            .map(|&code| {
                let word = code.as_str();
                (word, reg.counter("jocl_err_total", &[("code", word), ("plane", plane)]))
            })
            .collect();
        Self {
            requests_total: reg.counter("jocl_requests_total", &labels),
            errors_total: reg.counter("jocl_errors_total", &labels),
            request_ns,
            err_total,
            feed_offset: reg.gauge("jocl_feed_offset_bytes", &labels),
            replication_lag: reg.gauge("jocl_replication_lag_bytes", &labels),
            snapshot_save_ns: reg.histogram("jocl_snapshot_save_ns", &labels),
            snapshot_restore_ns: reg.histogram("jocl_snapshot_restore_ns", &labels),
        }
    }

    /// Count one arriving request (called on entry, so a request that
    /// later panics is still counted). No-op for `metrics`.
    pub fn record_request(&self, cmd: &Command) {
        if command_word(cmd).is_some() {
            self.requests_total.inc();
        }
    }

    /// Record one answered request: per-command latency and — for an
    /// `ERR` — the per-code counter. No-op for `metrics`.
    pub fn record_response(&self, cmd: &Command, resp: &Response, sw: &Stopwatch) {
        let Some(word) = command_word(cmd) else { return };
        if let Some(h) = self.request_ns.get(word) {
            h.record(sw.ns());
        }
        if let Response::Err(e) = resp {
            self.record_err(e.code);
        }
    }

    /// Count one `ERR` response (also used for panics caught outside
    /// [`crate::engine::Engine::execute`]).
    pub fn record_err(&self, code: ErrCode) {
        self.errors_total.inc();
        if let Some(c) = self.err_total.get(code.as_str()) {
            c.inc();
        }
    }
}

/// The cached per-plane handles (registered on first use).
pub(crate) fn plane(replica: bool) -> &'static PlaneMetrics {
    static WRITER: OnceLock<PlaneMetrics> = OnceLock::new();
    static REPLICA: OnceLock<PlaneMetrics> = OnceLock::new();
    if replica {
        REPLICA.get_or_init(|| PlaneMetrics::register("replica"))
    } else {
        WRITER.get_or_init(|| PlaneMetrics::register("writer"))
    }
}

/// Socket front-end gauges/counters (shared by every listener in the
/// process; connection churn is per-process state, not per-plane).
pub(crate) struct NetMetrics {
    /// Connections accepted over the process lifetime.
    pub connections_total: Arc<Counter>,
    /// Currently-open connection handler threads.
    pub active_connections: Arc<Gauge>,
}

pub(crate) fn net() -> &'static NetMetrics {
    static M: OnceLock<NetMetrics> = OnceLock::new();
    M.get_or_init(|| NetMetrics {
        connections_total: jocl_obs::registry().counter("jocl_net_connections_total", &[]),
        active_connections: jocl_obs::registry().gauge("jocl_net_active_connections", &[]),
    })
}

/// Process start, pinned on first use (the engine constructor), so
/// `stats` uptime is monotonic and never a wall-clock read.
pub(crate) fn process_start() -> Stopwatch {
    static START: OnceLock<Stopwatch> = OnceLock::new();
    *START.get_or_init(Stopwatch::start)
}

/// The `jocl_last_compaction_ms` gauge, set by `jocl_core`'s compaction
/// path and read back for the `stats` response.
pub(crate) fn last_compaction_ms() -> &'static Arc<Gauge> {
    static G: OnceLock<Arc<Gauge>> = OnceLock::new();
    G.get_or_init(|| jocl_obs::registry().gauge("jocl_last_compaction_ms", &[]))
}
