//! The serving line protocol.
//!
//! One request per line, whitespace-delimited command word first; the
//! same grammar drives the interactive stdin loop and the socket
//! front-end, so a command file pipes unchanged into either. Responses
//! are framed for machine consumption:
//!
//! ```text
//! OK <n>\n            then exactly n payload lines
//! ERR <code> <msg>\n  one line, codes from [`ErrCode`]
//! ```
//!
//! Every malformed request — unknown command, bad arity, unparsable
//! triple, dead `#ID` reference — becomes an `ERR` line and leaves the
//! session untouched and the loop alive; the PR-5 loop's
//! `println!("error: …")`-and-continue convention is now a typed
//! contract a remote client can dispatch on. Payload `\n`s are escaped
//! on the wire so framing can never be broken by content.

use crate::api::{parse_link_target, LinkRequest};
use jocl_core::DeltaOutput;
use jocl_kb::{KbError, Triple};
use std::io::{BufRead, Write};
use std::path::PathBuf;

/// A triple argument: inline content or a `#ID` session reference
/// (resolved by the engine against the live store — resolution is a
/// state concern, parsing is not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TripleRef {
    /// `S | P | O` content.
    Content(Triple),
    /// `#ID` — a session triple id.
    Id(u32),
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Feed the next `n` generated triples as adds.
    Ingest(usize),
    /// Add one triple.
    Add(Triple),
    /// Retract by content or `#ID`.
    Retract(TripleRef),
    /// Correct a triple: `revise OLD => S | P | O`.
    Revise {
        /// The triple being corrected.
        old: TripleRef,
        /// Its replacement content.
        new: Triple,
    },
    /// Cluster + link of live mentions with this phrase.
    Query(String),
    /// Entity-linking resolution: `link <phrase-or-uri> [limit=N]
    /// [threshold=X]` (see [`crate::api`] for the target grammar and
    /// the `link.v1` response frame). A read — served from the
    /// published view, never the writer.
    Link(LinkRequest),
    /// Session summary line (`stats.v1` — see [`crate::api`]).
    Stats,
    /// Observability exposition: the full registry as a `metrics.v1`
    /// frame (see [`crate::api`]). A read on either plane; deliberately
    /// records nothing about itself so two idle reads are
    /// byte-identical.
    Metrics,
    /// Persist the warm session (default path when `None`).
    Snapshot(Option<PathBuf>),
    /// Restart from a snapshot.
    Restore(Option<PathBuf>),
    /// Rebuild cold from the survivors now.
    Compact,
    /// Close this connection (stdin: end the loop).
    Quit,
    /// Stop the whole server (stdin: same as quit).
    Shutdown,
}

impl Command {
    /// Whether the command mutates session state (must run on the
    /// single writer; rejected on a read replica).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Command::Ingest(_)
                | Command::Add(_)
                | Command::Retract(_)
                | Command::Revise { .. }
                | Command::Restore(_)
                | Command::Compact
        )
    }
}

/// Machine-readable error class of an `ERR` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Malformed request line (bad arity, unparsable argument).
    Parse,
    /// Unknown command word.
    Unknown,
    /// `#ID` reference to a missing or retracted triple.
    BadId,
    /// Write command on a read replica.
    ReadOnly,
    /// I/O failure (snapshot/feed files, sockets).
    Io,
    /// Snapshot codec failure (corruption, config mismatch).
    Snapshot,
    /// The request panicked; the request failed but the serve loop is
    /// alive. State may be degraded until the next successful delta.
    Panic,
}

impl ErrCode {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Parse => "parse",
            ErrCode::Unknown => "unknown",
            ErrCode::BadId => "badid",
            ErrCode::ReadOnly => "readonly",
            ErrCode::Io => "io",
            ErrCode::Snapshot => "snapshot",
            ErrCode::Panic => "panic",
        }
    }

    /// Parse a wire token (client side).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "parse" => ErrCode::Parse,
            "unknown" => ErrCode::Unknown,
            "badid" => ErrCode::BadId,
            "readonly" => ErrCode::ReadOnly,
            "io" => ErrCode::Io,
            "snapshot" => ErrCode::Snapshot,
            "panic" => ErrCode::Panic,
            _ => return None,
        })
    }
}

/// A typed protocol error: the `ERR <code> <msg>` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-dispatchable class.
    pub code: ErrCode,
    /// Human-readable detail.
    pub msg: String,
}

impl WireError {
    /// Build an error response.
    pub fn new(code: ErrCode, msg: impl Into<String>) -> Self {
        Self { code, msg: msg.into() }
    }

    /// Classify a [`KbError`] (snapshot codec failures vs plain I/O).
    pub fn from_kb(e: &KbError) -> Self {
        fn is_snapshot(e: &KbError) -> bool {
            match e {
                KbError::Snapshot { .. } => true,
                KbError::WithPath { source, .. } => is_snapshot(source),
                _ => false,
            }
        }
        let code = if is_snapshot(e) { ErrCode::Snapshot } else { ErrCode::Io };
        Self::new(code, e.to_string())
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ERR {} {}", self.code.as_str(), escape_line(&self.msg))
    }
}

/// One framed response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `OK <n>` + n payload lines.
    Ok(Vec<String>),
    /// `ERR <code> <msg>`.
    Err(WireError),
}

impl Response {
    /// An `OK` with a single payload line.
    pub fn line(s: impl Into<String>) -> Self {
        Response::Ok(vec![s.into()])
    }

    /// Write the framed response (payload newlines escaped so content
    /// can never break framing).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        match self {
            Response::Ok(lines) => {
                writeln!(w, "OK {}", lines.len())?;
                for l in lines {
                    writeln!(w, "{}", escape_line(l))?;
                }
            }
            Response::Err(e) => writeln!(w, "{e}")?,
        }
        w.flush()
    }

    /// Read one framed response (client side). An unparsable frame or
    /// EOF mid-frame is an [`std::io::Error`].
    pub fn read_from(r: &mut impl BufRead) -> std::io::Result<Self> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut head = String::new();
        if r.read_line(&mut head)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a response",
            ));
        }
        let head = head.trim_end_matches(['\n', '\r']);
        if let Some(rest) = head.strip_prefix("OK ") {
            let n: usize =
                rest.trim().parse().map_err(|_| bad(format!("bad OK count in {head:?}")))?;
            let mut lines = Vec::with_capacity(n);
            for _ in 0..n {
                let mut l = String::new();
                if r.read_line(&mut l)? == 0 {
                    return Err(bad(format!("EOF inside an OK {n} frame")));
                }
                lines.push(l.trim_end_matches(['\n', '\r']).to_string());
            }
            Ok(Response::Ok(lines))
        } else if let Some(rest) = head.strip_prefix("ERR ") {
            let (code, msg) = rest.split_once(' ').unwrap_or((rest, ""));
            let code =
                ErrCode::parse(code).ok_or_else(|| bad(format!("bad ERR code in {head:?}")))?;
            Ok(Response::Err(WireError::new(code, msg)))
        } else {
            Err(bad(format!("unrecognized response frame {head:?}")))
        }
    }
}

fn escape_line(s: &str) -> String {
    if s.contains('\n') || s.contains('\r') {
        s.replace('\r', "\\r").replace('\n', "\\n")
    } else {
        s.to_string()
    }
}

/// Parse one request line. `Ok(None)` for blank lines and `#` comments;
/// every malformed line is a typed [`WireError`], never a panic.
pub fn parse_command(line: &str) -> Result<Option<Command>, WireError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let (cmd, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let rest = rest.trim();
    let no_args = |name: &str| -> Result<(), WireError> {
        if rest.is_empty() {
            Ok(())
        } else {
            Err(WireError::new(ErrCode::Parse, format!("{name} takes no arguments, got {rest:?}")))
        }
    };
    let opt_path = || if rest.is_empty() { None } else { Some(PathBuf::from(rest)) };
    Ok(Some(match cmd {
        "ingest" => Command::Ingest(rest.parse().map_err(|_| {
            WireError::new(ErrCode::Parse, format!("ingest needs a count, got {rest:?}"))
        })?),
        "add" => Command::Add(parse_triple(rest)?),
        "retract" => Command::Retract(parse_triple_ref(rest)?),
        "revise" => {
            let (old, new) = rest
                .split_once("=>")
                .ok_or_else(|| WireError::new(ErrCode::Parse, "revise needs 'OLD => NEW'"))?;
            Command::Revise { old: parse_triple_ref(old)?, new: parse_triple(new.trim())? }
        }
        "query" => {
            if rest.is_empty() {
                return Err(WireError::new(ErrCode::Parse, "query needs a phrase"));
            }
            Command::Query(rest.to_string())
        }
        "link" => Command::Link(parse_link_request(rest)?),
        "stats" => {
            no_args("stats")?;
            Command::Stats
        }
        "metrics" => {
            no_args("metrics")?;
            Command::Metrics
        }
        "snapshot" => Command::Snapshot(opt_path()),
        "restore" => Command::Restore(opt_path()),
        "compact" => {
            no_args("compact")?;
            Command::Compact
        }
        "quit" | "exit" => {
            no_args(cmd)?;
            Command::Quit
        }
        // `shutdown please` must not stop a shared server — argument
        // strictness matters most on the most destructive command.
        "shutdown" => {
            no_args("shutdown")?;
            Command::Shutdown
        }
        _ => return Err(WireError::new(ErrCode::Unknown, format!("unknown command {cmd:?}"))),
    }))
}

/// Parse `S | P | O` content.
pub fn parse_triple(s: &str) -> Result<Triple, WireError> {
    let parts: Vec<&str> = s.split('|').map(str::trim).collect();
    match parts.as_slice() {
        [s, p, o] if !s.is_empty() && !p.is_empty() && !o.is_empty() => Ok(Triple::new(s, p, o)),
        _ => Err(WireError::new(
            ErrCode::Parse,
            format!("expected 'subject | predicate | object', got {s:?}"),
        )),
    }
}

/// Parse the `link` argument: a target (phrase or URI), optionally
/// followed by trailing `limit=N` / `threshold=X` options. Options are
/// popped off the end so the target itself may contain spaces.
fn parse_link_request(rest: &str) -> Result<LinkRequest, WireError> {
    let mut rest = rest.trim();
    let mut limit = None;
    let mut threshold = None;
    loop {
        // A lone option token is still an option — `link limit=3` is a
        // missing target, not a phrase spelled "limit=3".
        let (head, tail) = rest.rsplit_once(char::is_whitespace).unwrap_or(("", rest));
        if let Some(v) = tail.strip_prefix("limit=") {
            let n: usize = v.parse().map_err(|_| {
                WireError::new(ErrCode::Parse, format!("link limit needs a count, got {tail:?}"))
            })?;
            if n == 0 {
                return Err(WireError::new(ErrCode::Parse, "link limit must be at least 1"));
            }
            limit = Some(n);
            rest = head.trim_end();
        } else if let Some(v) = tail.strip_prefix("threshold=") {
            let t: f64 = v.parse().map_err(|_| {
                WireError::new(
                    ErrCode::Parse,
                    format!("link threshold needs a number, got {tail:?}"),
                )
            })?;
            if !t.is_finite() || !(0.0..=1.0).contains(&t) {
                return Err(WireError::new(
                    ErrCode::Parse,
                    format!("link threshold must be in [0, 1], got {v}"),
                ));
            }
            threshold = Some(t);
            rest = head.trim_end();
        } else {
            break;
        }
    }
    Ok(LinkRequest { target: parse_link_target(rest)?, limit, threshold })
}

/// Parse `S | P | O` or `#ID` (the id is resolved later, by the engine).
pub fn parse_triple_ref(s: &str) -> Result<TripleRef, WireError> {
    let s = s.trim();
    if let Some(id) = s.strip_prefix('#') {
        let id: u32 = id
            .trim()
            .parse()
            .map_err(|_| WireError::new(ErrCode::Parse, format!("bad triple id {s:?}")))?;
        return Ok(TripleRef::Id(id));
    }
    Ok(TripleRef::Content(parse_triple(s)?))
}

/// The per-delta stats line (identical to the PR-5 interactive output,
/// so existing smoke expectations and eyeballs both still work).
pub fn format_delta(out: &DeltaOutput, ms: f64) -> String {
    let s = &out.stats;
    format!(
        "  +{} -{} ~{} dup {} miss {} | vars+{} factors+{} tomb {} | live {} density {:.3} | \
         {} msg {} | {:.1} ms{}",
        s.appended,
        s.retracted,
        s.revised,
        s.duplicates,
        s.missed_retracts,
        s.new_vars,
        s.new_factors,
        s.tombstoned_factors,
        s.live_triples,
        s.tombstone_density,
        if s.warm_started { "warm" } else { "cold" },
        s.lbp.message_updates,
        ms,
        if s.compacted { " [COMPACTED]" } else { "" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command_form() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("   # comment").unwrap(), None);
        assert_eq!(parse_command("ingest 40").unwrap(), Some(Command::Ingest(40)));
        assert_eq!(
            parse_command("add A | rel | B").unwrap(),
            Some(Command::Add(Triple::new("A", "rel", "B")))
        );
        assert_eq!(parse_command("retract #7").unwrap(), Some(Command::Retract(TripleRef::Id(7))));
        assert_eq!(
            parse_command("retract A | rel | B").unwrap(),
            Some(Command::Retract(TripleRef::Content(Triple::new("A", "rel", "B"))))
        );
        assert_eq!(
            parse_command("revise #3 => A | rel | B").unwrap(),
            Some(Command::Revise { old: TripleRef::Id(3), new: Triple::new("A", "rel", "B") })
        );
        assert_eq!(parse_command("query Foo Inc").unwrap(), Some(Command::Query("Foo Inc".into())));
        assert_eq!(
            parse_command("link Foo Inc").unwrap(),
            Some(Command::Link(LinkRequest {
                target: crate::api::LinkTarget::Surface("Foo Inc".into()),
                limit: None,
                threshold: None,
            }))
        );
        assert_eq!(
            parse_command("link the terps limit=3 threshold=0.25").unwrap(),
            Some(Command::Link(LinkRequest {
                target: crate::api::LinkTarget::Surface("the terps".into()),
                limit: Some(3),
                threshold: Some(0.25),
            }))
        );
        assert_eq!(
            parse_command("link ckb://entity/7/umd limit=1").unwrap(),
            Some(Command::Link(LinkRequest {
                target: crate::api::LinkTarget::Entity(7),
                limit: Some(1),
                threshold: None,
            }))
        );
        assert_eq!(parse_command("stats").unwrap(), Some(Command::Stats));
        assert_eq!(parse_command("metrics").unwrap(), Some(Command::Metrics));
        assert_eq!(parse_command("snapshot").unwrap(), Some(Command::Snapshot(None)));
        assert_eq!(
            parse_command("snapshot /tmp/x.snap").unwrap(),
            Some(Command::Snapshot(Some(PathBuf::from("/tmp/x.snap"))))
        );
        assert_eq!(parse_command("restore").unwrap(), Some(Command::Restore(None)));
        assert_eq!(parse_command("compact").unwrap(), Some(Command::Compact));
        assert_eq!(parse_command("quit").unwrap(), Some(Command::Quit));
        assert_eq!(parse_command("exit").unwrap(), Some(Command::Quit));
        assert_eq!(parse_command("shutdown").unwrap(), Some(Command::Shutdown));
    }

    /// Satellite contract: each command's malformed variants are typed
    /// parse errors, never panics.
    #[test]
    fn malformed_variants_are_typed_errors() {
        let parse_err = |line: &str| {
            let e = parse_command(line).unwrap_err();
            assert_eq!(e.code, ErrCode::Parse, "{line:?} -> {e:?}");
            e
        };
        parse_err("ingest");
        parse_err("ingest many");
        parse_err("ingest -3");
        parse_err("add");
        parse_err("add just-one-field");
        parse_err("add a | b");
        parse_err("add  | b | c");
        parse_err("add a | b | c | d");
        parse_err("retract #notanum");
        parse_err("retract #");
        parse_err("retract a | b");
        parse_err("revise a | b | c");
        parse_err("revise #1 => ");
        parse_err("revise => a | b | c");
        parse_err("query");
        parse_err("link");
        parse_err("link limit=3");
        parse_err("link x limit=0");
        parse_err("link x limit=lots");
        parse_err("link x threshold=maybe");
        parse_err("link x threshold=1.5");
        parse_err("link x threshold=-0.1");
        parse_err("link x threshold=nan");
        parse_err("link jocl://banana/3");
        parse_err("link jocl://np/notanum");
        parse_err("stats now");
        parse_err("metrics now");
        parse_err("compact hard");
        parse_err("quit now");
        parse_err("shutdown please");
        assert_eq!(parse_command("frobnicate").unwrap_err().code, ErrCode::Unknown);
    }

    #[test]
    fn responses_roundtrip_the_wire() {
        let mut buf = Vec::new();
        Response::Ok(vec!["one".into(), "two\nlines".into()]).write_to(&mut buf).unwrap();
        Response::Err(WireError::new(ErrCode::BadId, "triple #9 is already retracted"))
            .write_to(&mut buf)
            .unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        assert_eq!(
            Response::read_from(&mut r).unwrap(),
            Response::Ok(vec!["one".into(), "two\\nlines".into()])
        );
        assert_eq!(
            Response::read_from(&mut r).unwrap(),
            Response::Err(WireError::new(ErrCode::BadId, "triple #9 is already retracted"))
        );
        assert!(Response::read_from(&mut r).is_err(), "EOF is an error, not a frame");
    }
}
