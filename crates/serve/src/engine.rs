//! The transport-agnostic serve engine: one [`Engine::execute`] call
//! per parsed [`Command`], shared verbatim by the interactive stdin
//! loop, the socket front-end's writer thread and the in-process tests
//! — so "the serve loop" has exactly one behavior regardless of how the
//! line arrived.
//!
//! The engine also owns the **replication feed** plumbing
//! ([`FeedRole`]):
//!
//! * a **writer** appends every committed write batch to an append-only
//!   log ([`jocl_core::feed`]) *after* the apply succeeds, preserving
//!   batch boundaries (warm-start work depends on batching, and replica
//!   parity is bitwise, so the replica must replay the writer's exact
//!   batches);
//! * a **follower** (read replica) never accepts writes over the wire
//!   (`ERR readonly`), and instead [`Engine::poll_feed`]s the writer's
//!   log, applying each entry as the writer did. A follower typically
//!   warm-boots from the writer's snapshot + [`FeedCursor`] sidecar
//!   ([`Engine::open_replica`]) and only replays the log tail — the
//!   warm-catch-up path the `serve_net` gate prices against a cold
//!   rebuild.
//!
//! Failure policy: every per-request failure is a typed
//! [`WireError`] response; [`Engine::execute_caught`] additionally
//! converts a panicking request (e.g. a poisoned inference worker) into
//! `ERR panic …` so one bad request can never take down the loop or the
//! listener.

use crate::api::{format_link, format_metrics, format_query, format_stats};
use crate::obs;
use crate::protocol::{format_delta, Command, ErrCode, Response, TripleRef, WireError};
use crate::view::{ReadView, SessionStats};
use crate::{ServeConfig, ServeSession};
use jocl_core::feed::{append_entry, read_entries, truncate_to, FeedEntry};
use jocl_core::{DeltaOp, DeltaOutput, JoclConfig, Signals};
use jocl_kb::{Ckb, FeedCursor, KbError, Triple, TripleId};
use jocl_obs::Stopwatch;
use std::path::{Path, PathBuf};

/// The engine's relationship to the replication feed log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedRole {
    /// No replication (PR-5 behavior: a lone interactive session).
    None,
    /// Single writer: append committed write batches to this log.
    Writer(PathBuf),
    /// Read replica: reject wire writes, follow this log.
    Follower(PathBuf),
}

impl FeedRole {
    /// The log path, if any.
    pub fn path(&self) -> Option<&Path> {
        match self {
            FeedRole::None => None,
            FeedRole::Writer(p) | FeedRole::Follower(p) => Some(p),
        }
    }
}

/// Engine deployment options (the model/serving policy stays in
/// [`JoclConfig`] / [`ServeConfig`]).
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Default `snapshot`/`restore` path.
    pub snapshot_path: PathBuf,
    /// Replication role.
    pub feed: FeedRole,
}

/// The transport-agnostic serve loop body.
pub struct Engine<'a> {
    session: ServeSession<'a>,
    config: JoclConfig,
    serve: ServeConfig,
    ckb: &'a Ckb,
    signals: &'a Signals,
    /// The generated source pool behind `ingest`.
    pool: Vec<Triple>,
    pool_cursor: usize,
    feed_offset: u64,
    opts: EngineOptions,
    version: u64,
}

impl<'a> Engine<'a> {
    /// Open an engine over a fresh session.
    pub fn open(
        config: JoclConfig,
        serve: ServeConfig,
        ckb: &'a Ckb,
        signals: &'a Signals,
        pool: Vec<Triple>,
        opts: EngineOptions,
    ) -> Self {
        // Pin the uptime epoch before the first request can ask for it.
        obs::process_start();
        let session = ServeSession::open(config.clone(), serve.clone(), ckb, signals);
        Self {
            session,
            config,
            serve,
            ckb,
            signals,
            pool,
            pool_cursor: 0,
            feed_offset: 0,
            opts,
            version: 0,
        }
    }

    /// Open a read replica: warm-restore from the writer's snapshot +
    /// cursor sidecar when present (the normal path — catch-up then
    /// only replays the log tail past the snapshot), or start cold at
    /// offset 0 and replay the whole log. `opts.feed` must be
    /// [`FeedRole::Follower`].
    pub fn open_replica(
        config: JoclConfig,
        serve: ServeConfig,
        ckb: &'a Ckb,
        signals: &'a Signals,
        pool: Vec<Triple>,
        opts: EngineOptions,
    ) -> Result<Self, KbError> {
        assert!(
            matches!(opts.feed, FeedRole::Follower(_)),
            "open_replica requires FeedRole::Follower"
        );
        let mut engine = Self::open(config, serve, ckb, signals, pool, opts);
        if engine.opts.snapshot_path.exists() {
            let sw = Stopwatch::start();
            let cursor_path = engine.opts.snapshot_path.with_extension("cursor");
            let cursor = FeedCursor::load(&cursor_path)?;
            engine.session = ServeSession::restore_from(
                &engine.opts.snapshot_path,
                engine.config.clone(),
                engine.serve.clone(),
                engine.ckb,
                engine.signals,
            )?;
            engine.pool_cursor = (cursor.pool_cursor as usize).min(engine.pool.len());
            engine.set_feed_offset(cursor.feed_offset);
            engine.version = 1;
            obs::plane(true).snapshot_restore_ns.record(sw.ns());
        }
        Ok(engine)
    }

    /// Whether this plane rejects wire writes.
    pub fn is_replica(&self) -> bool {
        matches!(self.opts.feed, FeedRole::Follower(_))
    }

    /// The wrapped session (stats, parity checks).
    pub fn session(&self) -> &ServeSession<'a> {
        &self.session
    }

    /// Mutable session access (state export needs `&mut`).
    pub fn session_mut(&mut self) -> &mut ServeSession<'a> {
        &mut self.session
    }

    /// Next unconsumed generated-pool index.
    pub fn pool_cursor(&self) -> usize {
        self.pool_cursor
    }

    /// Replication-log byte offset this engine has incorporated.
    pub fn feed_offset(&self) -> u64 {
        self.feed_offset
    }

    /// Committed-write version (bumped once per state-changing command).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Capture the committed state as an immutable read view. The
    /// registry-sourced stats fields are stamped at capture time, so a
    /// socket `stats` read reports totals as of the last published
    /// view (readers stay lock-free; the next commit refreshes them).
    pub fn read_view(&self) -> ReadView {
        let mut view = ReadView::capture(&self.session, self.version, self.is_replica());
        view.stats = self.decorate_stats(view.stats);
        view
    }

    /// Current session summary.
    pub fn session_stats(&self) -> SessionStats {
        self.decorate_stats(SessionStats::of(&self.session, self.version, self.is_replica()))
    }

    /// Fill the registry-sourced summary fields (uptime, this plane's
    /// request/error totals, last compaction duration).
    fn decorate_stats(&self, mut stats: SessionStats) -> SessionStats {
        let m = obs::plane(self.is_replica());
        stats.uptime_ms = obs::process_start().ms_u64();
        stats.requests = m.requests_total.get();
        stats.errors = m.errors_total.get();
        stats.last_compaction_ms = obs::last_compaction_ms().get();
        stats
    }

    /// Execute one command, converting a panic into `ERR panic …` so a
    /// poisoned request kills neither a stdin loop nor a listener. The
    /// session may be degraded after a panic (a delta died mid-apply);
    /// the response says so, and the loop lives to report it.
    pub fn execute_caught(&mut self, cmd: &Command) -> Response {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.execute(cmd))) {
            Ok(resp) => resp,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                // The panic unwound past `execute`'s bookkeeping, so the
                // error is counted here (the request itself was already
                // counted on entry).
                obs::plane(self.is_replica()).record_err(ErrCode::Panic);
                Response::Err(WireError::new(
                    ErrCode::Panic,
                    format!("request panicked ({msg}); session may be degraded"),
                ))
            }
        }
    }

    /// Execute one command against the session. Every failure is a
    /// typed [`Response::Err`] that leaves the session consistent (the
    /// checks run before any mutation).
    ///
    /// Every request except `metrics` records into this plane's
    /// request counter, per-command latency histogram and (for `ERR`s)
    /// per-code counter; `metrics` records nothing so that two reads of
    /// an idle server return byte-identical frames.
    pub fn execute(&mut self, cmd: &Command) -> Response {
        let m = obs::plane(self.is_replica());
        m.record_request(cmd);
        let sw = Stopwatch::start();
        let resp = self.execute_inner(cmd, sw);
        m.record_response(cmd, &resp, &sw);
        resp
    }

    fn execute_inner(&mut self, cmd: &Command, t0: Stopwatch) -> Response {
        if cmd.is_write() && self.is_replica() {
            return Response::Err(WireError::new(
                ErrCode::ReadOnly,
                "read replica: writes go to the writer plane",
            ));
        }
        match cmd {
            Command::Ingest(n) => {
                let end = (self.pool_cursor + n).min(self.pool.len());
                let ops: Vec<DeltaOp> =
                    self.pool[self.pool_cursor..end].iter().cloned().map(DeltaOp::Add).collect();
                let head = format!(
                    "ingest {} (feed {}..{})",
                    end - self.pool_cursor,
                    self.pool_cursor,
                    end
                );
                match self.apply_logged(ops) {
                    Ok(out) => {
                        self.pool_cursor = end;
                        Response::Ok(vec![head, format_delta(&out, t0.ms())])
                    }
                    Err(e) => Response::Err(e),
                }
            }
            Command::Add(t) => self.delta_response(vec![DeltaOp::Add(t.clone())], t0),
            Command::Retract(r) => match self.resolve(r) {
                Ok(t) => self.delta_response(vec![DeltaOp::Retract(t)], t0),
                Err(e) => Response::Err(e),
            },
            Command::Revise { old, new } => match self.resolve(old) {
                Ok(old) => self.delta_response(vec![DeltaOp::Revise { old, new: new.clone() }], t0),
                Err(e) => Response::Err(e),
            },
            Command::Query(phrase) => {
                Response::Ok(format_query(phrase, &self.session.query_phrase(phrase)))
            }
            Command::Link(req) => Response::Ok(format_link(&self.session.link(req))),
            Command::Stats => Response::line(format_stats(&self.session_stats())),
            // A point-in-time read of the process-wide registry. Never
            // routed through any recording path (see `execute`).
            Command::Metrics => Response::Ok(format_metrics(&jocl_obs::registry().snapshot())),
            Command::Snapshot(path) => self.snapshot(path.as_deref(), t0),
            Command::Restore(path) => self.restore(path.as_deref(), t0),
            Command::Compact => {
                let out = self.session.compact();
                if let FeedRole::Writer(path) = &self.opts.feed {
                    // A *manual* compact is an explicit state transition
                    // the replica must replay at the same point in the
                    // stream (threshold-triggered compaction inside
                    // `apply` is deterministic from the shared config
                    // and needs no log entry).
                    match append_entry(path, &FeedEntry::Compact) {
                        Ok(end) => self.set_feed_offset(end),
                        Err(e) => return Response::Err(feed_append_failed(&e)),
                    }
                }
                self.version += 1;
                Response::line(format_delta(&out, t0.ms()))
            }
            Command::Quit => Response::line("bye"),
            Command::Shutdown => Response::line("shutting down"),
        }
    }

    /// Follower only: apply every complete new entry from the writer's
    /// log. Returns the number of entries applied (0 when already
    /// caught up, or for non-followers). A torn tail (writer mid-append)
    /// is not an error — the partial entry is picked up next poll.
    pub fn poll_feed(&mut self) -> Result<usize, KbError> {
        let FeedRole::Follower(path) = &self.opts.feed else { return Ok(0) };
        let (entries, end) = read_entries(path, self.feed_offset)?;
        // The lag gauge tracks bytes of writer log this follower has
        // not yet incorporated; it stays at the pre-catch-up value
        // while the batch applies and drops to zero after.
        let m = obs::plane(true);
        m.replication_lag.set(end.saturating_sub(self.feed_offset));
        if entries.is_empty() {
            return Ok(0);
        }
        let mut span = jocl_obs::span!("replica_catchup");
        span.add_count(entries.len() as u64);
        let applied = entries.len();
        for entry in entries {
            match entry {
                // Replay the writer's exact batch: warm-start work (and
                // therefore bitwise state parity) depends on batch
                // boundaries, which is why the log frames whole batches.
                FeedEntry::Ops(ops) => {
                    self.session.apply(&ops);
                }
                FeedEntry::Compact => {
                    self.session.compact();
                }
            }
            self.version += 1;
        }
        self.set_feed_offset(end);
        m.replication_lag.set(0);
        Ok(applied)
    }

    /// Advance the incorporated log offset and mirror it to this
    /// plane's gauge.
    fn set_feed_offset(&mut self, end: u64) {
        self.feed_offset = end;
        obs::plane(self.is_replica()).feed_offset.set(end);
    }

    /// Resolve a triple reference against the live session. A dead id
    /// is an error — its content may live on under a fresh id after a
    /// re-add, and expanding the reference would silently target that.
    fn resolve(&self, r: &TripleRef) -> Result<Triple, WireError> {
        match r {
            TripleRef::Content(t) => Ok(t.clone()),
            TripleRef::Id(id) => {
                let inner = self.session.session();
                if (*id as usize) >= inner.len() {
                    return Err(WireError::new(
                        ErrCode::BadId,
                        format!("triple #{id} does not exist (have {})", inner.len()),
                    ));
                }
                if !inner.is_live(TripleId(*id)) {
                    return Err(WireError::new(
                        ErrCode::BadId,
                        format!("triple #{id} is already retracted"),
                    ));
                }
                Ok(inner.okb().triple(TripleId(*id)).clone())
            }
        }
    }

    /// Apply one write batch and append it to the replication log.
    fn apply_logged(&mut self, ops: Vec<DeltaOp>) -> Result<DeltaOutput, WireError> {
        let out = self.session.apply(&ops);
        if let FeedRole::Writer(path) = &self.opts.feed {
            // Logged *after* a successful apply: a batch that dies never
            // reaches replicas. The inverse failure (applied locally,
            // append failed) is surfaced as an error so the operator
            // knows replicas are now behind until the next snapshot.
            match append_entry(path, &FeedEntry::Ops(ops)) {
                Ok(end) => self.set_feed_offset(end),
                Err(e) => {
                    self.version += 1;
                    return Err(feed_append_failed(&e));
                }
            }
        }
        self.version += 1;
        Ok(out)
    }

    fn delta_response(&mut self, ops: Vec<DeltaOp>, t0: Stopwatch) -> Response {
        match self.apply_logged(ops) {
            Ok(out) => Response::line(format_delta(&out, t0.ms())),
            Err(e) => Response::Err(e),
        }
    }

    fn snapshot(&mut self, path: Option<&Path>, t0: Stopwatch) -> Response {
        let path = path.map(Path::to_path_buf).unwrap_or_else(|| self.opts.snapshot_path.clone());
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                return Response::Err(WireError::new(
                    ErrCode::Io,
                    format!("creating {}: {e}", dir.display()),
                ));
            }
        }
        let bytes = match self.session.snapshot_to(&path) {
            Ok(b) => b,
            Err(e) => return Response::Err(WireError::from_kb(&e)),
        };
        obs::plane(self.is_replica()).snapshot_save_ns.record(t0.ns());
        // The feeds' positions are process state the snapshot cannot
        // carry; the sidecar pins both so a restore (or a replica
        // warm-boot) resumes the generator feed and the replication log
        // exactly.
        let cursor =
            FeedCursor { pool_cursor: self.pool_cursor as u64, feed_offset: self.feed_offset };
        if let Err(e) = cursor.save(&path.with_extension("cursor")) {
            return Response::Err(WireError::from_kb(&e));
        }
        Response::line(format!(
            "  snapshot written: {} ({bytes} bytes, {:.1} ms)",
            path.display(),
            t0.ms()
        ))
    }

    fn restore(&mut self, path: Option<&Path>, t0: Stopwatch) -> Response {
        let path = path.map(Path::to_path_buf).unwrap_or_else(|| self.opts.snapshot_path.clone());
        let restored = match ServeSession::restore_from(
            &path,
            self.config.clone(),
            self.serve.clone(),
            self.ckb,
            self.signals,
        ) {
            Ok(s) => s,
            Err(e) => return Response::Err(WireError::from_kb(&e)),
        };
        // Resync the feed positions before committing the session swap.
        let (pool_cursor, feed_offset) = match FeedCursor::load(&path.with_extension("cursor")) {
            Ok(c) => ((c.pool_cursor as usize).min(self.pool.len()), c.feed_offset),
            Err(e) if matches!(self.opts.feed, FeedRole::Writer(_)) => {
                // A writer rewinding to an unknown log position would
                // silently desync every replica — refuse instead.
                return Response::Err(WireError::new(
                    ErrCode::Snapshot,
                    format!(
                        "snapshot has no usable cursor sidecar ({e}); cannot resync the \
                         replication log"
                    ),
                ));
            }
            Err(_) => {
                // Feedless session: fall back to the longest feed prefix
                // present in the restored store (exact unless compaction
                // has dropped retracted texts — the sidecar covers that).
                let seen: std::collections::HashSet<&Triple> =
                    restored.session().okb().triples().map(|(_, t)| t).collect();
                (self.pool.iter().take_while(|t| seen.contains(t)).count(), 0)
            }
        };
        if let FeedRole::Writer(feed_path) = &self.opts.feed {
            // The log must end where the restored state ends, or a
            // replica would replay operations the writer no longer has.
            if let Err(e) = truncate_to(feed_path, feed_offset) {
                return Response::Err(WireError::from_kb(&e));
            }
        }
        self.session = restored;
        self.pool_cursor = pool_cursor;
        self.set_feed_offset(feed_offset);
        self.version += 1;
        obs::plane(self.is_replica()).snapshot_restore_ns.record(t0.ns());
        Response::line(format!(
            "  restored warm from {} ({} triples, {} live, feed cursor -> {}, {:.1} ms)",
            path.display(),
            self.session.session().len(),
            self.session.session().num_live(),
            self.pool_cursor,
            t0.ms()
        ))
    }
}

fn feed_append_failed(e: &KbError) -> WireError {
    WireError::new(
        ErrCode::Io,
        format!(
            "delta applied but replication-log append failed ({e}); replicas are behind \
                 until the next snapshot"
        ),
    )
}
