//! The typed serving API: structured request/response types for the
//! read-side commands, with **one** serialization path shared by
//! library callers, the interactive stdin loop and the socket protocol.
//!
//! Two response families live here:
//!
//! * [`MentionReport`] + [`format_query`]/[`parse_query`] — the `query`
//!   command's per-mention cluster/link report (`query.v1` frames);
//! * [`LinkReport`] + [`format_link`]/[`parse_link`] — the `link`
//!   command's entity-linking answer (`link.v1` frames): canonical
//!   cluster URIs with calibrated confidences, backed by the decoded
//!   clustering *and* any imported external-KB side information
//!   ([`jocl_kb::SideKb`]);
//! * [`format_stats`]/[`parse_stats`] — the `stats` command's session
//!   summary (`stats.v1`, one line of `key=value` fields in fixed
//!   order);
//! * [`format_metrics`]/[`parse_metrics`] — the `metrics` command's
//!   registry exposition (`metrics.v1`, Prometheus-style
//!   `name{label="v"} value` lines in sorted key order).
//!
//! ## Wire formats (versioned field order)
//!
//! All frames are payload lines inside the protocol's `OK <n>` framing.
//! The first payload line is a versioned header; the version token is
//! the contract — fields are only ever *appended* within a version, and
//! any reordering bumps it.
//!
//! ```text
//! query.v1 matches=<n> <phrase>
//! mention #<triple> <role> cluster=<size> entity=<id|-> relation=<id|-> <phrase> <cluster-phrases>
//!
//! link.v1 np=<n> rp=<m> <target>
//! np <uri> <confidence> <support> <cluster_size> <label…>
//! rp <uri> <confidence> <support> <cluster_size> <label…>
//!
//! stats.v1 triples=<n> live=<n> vars=<n> factors=<n> density=<f> ops=<n> compactions=<n>
//!          msg=<n> heap_bytes=<n> version=<n> plane=<writer|replica> uptime_ms=<n>
//!          requests=<n> errors=<n> last_compaction_ms=<n>          (one line)
//!
//! metrics.v1 entries=<n>
//! <name>{<k>="<v>",…} <u64>                                        (counters, gauges)
//! <name>_bucket{…,le="<2^k|+Inf>"} <cumulative>                    (histograms, then)
//! <name>_count{…} <n>
//! <name>_sum{…} <n>
//! ```
//!
//! `metrics.v1` values are integers only (nanoseconds, bytes, counts)
//! and the registry snapshot iterates in sorted canonical-key order, so
//! an idle server's frame is **byte-identical** across reads — the
//! determinism the `obs_scale` gate certifies. Histogram buckets are
//! cumulative, log-base-2 upper bounds, elided after the last occupied
//! bucket (the `+Inf` bucket always closes the series).
//!
//! Variable-width text (phrases, labels) always sits **last** on its
//! line so the fixed prefix parses with plain `split`; confidences are
//! printed with `f64`'s shortest-roundtrip `Display`, so a parsed frame
//! reproduces the server's floats bit for bit.
//!
//! ## Canonical URIs
//!
//! * `jocl://np/<cluster>/<slug>` — a decoded NP cluster (the open KB's
//!   own canonical entity);
//! * `jocl://rp/<cluster>/<slug>` — a decoded RP cluster;
//! * `ckb://entity/<id>/<slug>` — a curated-KB entity;
//! * `ckb://relation/<id>/<slug>` — a curated-KB relation.
//!
//! The numeric id is authoritative; the trailing slug is a sanitized
//! label for human eyes and is ignored (and optional) on input.
//!
//! ## Confidence calibration
//!
//! For a surface-form target, candidates are **vote shares**: each
//! matched live mention casts one vote per family (cluster membership
//! for `jocl://` candidates, its decoded link for `ckb://` candidates),
//! and confidence = votes / matched mentions — so within a family the
//! `ckb://` confidences sum to at most 1, as do the cluster
//! confidences. Candidates contributed only by the imported side table
//! carry the import weight as confidence and `support = 0`, making
//! "decoded evidence" and "dictionary evidence" distinguishable in the
//! same ranked list.

use crate::protocol::{ErrCode, WireError};
use crate::view::SessionStats;
use jocl_core::JoclOutput;
use jocl_kb::{Ckb, EntityId, NpMention, Okb, RelationId, RpMention, SideKb, TripleId};
use jocl_obs::{MetricValue, MetricsSnapshot};
use jocl_text::fx::FxHashMap;

/// Candidates returned per family when the request does not say.
pub const DEFAULT_LINK_LIMIT: usize = 10;

/// One live mention matching a `query` request.
#[derive(Debug, Clone)]
pub struct MentionReport {
    /// Owning session triple.
    pub triple: TripleId,
    /// `"subject"`, `"object"` or `"predicate"`.
    pub role: &'static str,
    /// The mention's surface phrase.
    pub phrase: String,
    /// Live mentions sharing its cluster (including itself).
    pub cluster_size: usize,
    /// Distinct phrases of the cluster's live members, sorted.
    pub cluster_phrases: Vec<String>,
    /// Linked entity (NP) — `None` for predicates or unlinked mentions.
    pub entity: Option<EntityId>,
    /// Linked relation (RP mentions only).
    pub relation: Option<RelationId>,
}

/// What a `link` request resolves. Parsed by [`parse_link_target`];
/// anything that is not a recognized URI is a surface form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkTarget {
    /// A surface phrase, matched against live mentions (and the side
    /// table) case-insensitively.
    Surface(String),
    /// A decoded NP cluster by id (`jocl://np/<id>`).
    NpCluster(u32),
    /// A decoded RP cluster by id (`jocl://rp/<id>`).
    RpCluster(u32),
    /// A curated-KB entity (`ckb://entity/<id>`): reverse lookup of the
    /// NP clusters linking to it.
    Entity(u32),
    /// A curated-KB relation (`ckb://relation/<id>`).
    Relation(u32),
}

impl std::fmt::Display for LinkTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkTarget::Surface(s) => write!(f, "{s}"),
            LinkTarget::NpCluster(id) => write!(f, "jocl://np/{id}"),
            LinkTarget::RpCluster(id) => write!(f, "jocl://rp/{id}"),
            LinkTarget::Entity(id) => write!(f, "ckb://entity/{id}"),
            LinkTarget::Relation(id) => write!(f, "ckb://relation/{id}"),
        }
    }
}

/// A parsed `link` request. `None` options fall back to the serving
/// defaults ([`DEFAULT_LINK_LIMIT`], `ServeConfig::link_threshold`).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkRequest {
    /// What to resolve.
    pub target: LinkTarget,
    /// Per-family candidate cap.
    pub limit: Option<usize>,
    /// Minimum confidence a candidate must reach.
    pub threshold: Option<f64>,
}

impl LinkRequest {
    /// A request for a surface phrase with default limit/threshold.
    pub fn surface(phrase: impl Into<String>) -> Self {
        Self { target: LinkTarget::Surface(phrase.into()), limit: None, threshold: None }
    }
}

/// One ranked link candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkCandidate {
    /// Canonical URI (see the module docs for the grammar).
    pub uri: String,
    /// Human-readable label (cluster canonical phrase / CKB name).
    pub label: String,
    /// Calibrated confidence in `[0, 1]` (see the module docs).
    pub confidence: f64,
    /// Matched live mentions voting for this candidate (`0` for
    /// candidates contributed only by the imported side table).
    pub support: usize,
    /// Live size of the backing cluster (`0` for `ckb://` candidates).
    pub cluster_size: usize,
}

/// The `link` response: ranked candidates per mention family.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkReport {
    /// The resolved target, in canonical form.
    pub target: String,
    /// Noun-phrase-side candidates (`jocl://np/…`, `ckb://entity/…`).
    pub np: Vec<LinkCandidate>,
    /// Relation-phrase-side candidates (`jocl://rp/…`, `ckb://relation/…`).
    pub rp: Vec<LinkCandidate>,
}

impl LinkReport {
    /// True when neither family produced a candidate (a miss is an
    /// answer, not an error).
    pub fn is_empty(&self) -> bool {
        self.np.is_empty() && self.rp.is_empty()
    }
}

/// Parse a `link` target: a `jocl://` / `ckb://` URI, or a surface
/// phrase. Malformed URIs (unknown scheme or kind, non-numeric id) are
/// typed parse errors; a *well-formed* URI whose id does not exist is
/// left for the serving layer to answer with an empty report.
pub fn parse_link_target(s: &str) -> Result<LinkTarget, WireError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(WireError::new(ErrCode::Parse, "link needs a phrase or a jocl://|ckb:// URI"));
    }
    let Some((scheme, rest)) = s.split_once("://") else {
        return Ok(LinkTarget::Surface(s.to_string()));
    };
    let mut parts = rest.split('/');
    let kind = parts.next().unwrap_or("");
    let id = parts.next().unwrap_or("");
    // Anything past the id is the cosmetic slug; ignored.
    let id: u32 = id.parse().map_err(|_| {
        WireError::new(ErrCode::Parse, format!("link URI needs a numeric id, got {s:?}"))
    })?;
    match (scheme, kind) {
        ("jocl", "np") => Ok(LinkTarget::NpCluster(id)),
        ("jocl", "rp") => Ok(LinkTarget::RpCluster(id)),
        ("ckb", "entity") => Ok(LinkTarget::Entity(id)),
        ("ckb", "relation") => Ok(LinkTarget::Relation(id)),
        _ => Err(WireError::new(
            ErrCode::Parse,
            format!(
                "unknown link URI {s:?} (expected jocl://np|rp/<id> or ckb://entity|relation/<id>)"
            ),
        )),
    }
}

/// Sanitize a label into a URI slug: lowercase, `[a-z0-9]` runs joined
/// by single dashes, capped at 32 bytes, never empty.
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len().min(32));
    let mut dash = false;
    for c in label.chars().flat_map(char::to_lowercase) {
        if c.is_ascii_alphanumeric() {
            if dash && !out.is_empty() {
                out.push('-');
            }
            dash = false;
            out.push(c);
            if out.len() >= 32 {
                break;
            }
        } else {
            dash = true;
        }
    }
    if out.is_empty() {
        out.push('x');
    }
    out
}

/// Name/side-information resolution a link answer needs beyond the
/// decode itself. The live session implements it against the shared
/// [`Ckb`] ([`CkbLinkContext`]); the captured
/// [`ReadView`](crate::view::ReadView) implements it from owned maps —
/// both planes then answer through the same [`link_of`], identically by
/// construction.
pub trait LinkContext {
    /// Canonical name of a curated entity (None when out of range).
    fn entity_name(&self, id: EntityId) -> Option<String>;
    /// Canonical name of a curated relation.
    fn relation_name(&self, id: RelationId) -> Option<String>;
    /// Imported side-table entity rows for a surface form, resolved to
    /// curated ids (empty when no table is active).
    fn side_entities(&self, surface: &str) -> Vec<(EntityId, f64)>;
    /// Imported side-table relation rows for a surface form.
    fn side_relations(&self, surface: &str) -> Vec<(RelationId, f64)>;
}

/// [`LinkContext`] over the live serving resources: the shared curated
/// KB plus the session's imported side table.
pub struct CkbLinkContext<'a> {
    ckb: &'a Ckb,
    side: Option<&'a SideKb>,
}

impl<'a> CkbLinkContext<'a> {
    /// `side` should already be filtered for emptiness (an empty table
    /// is contractually inert — pass `None`).
    pub fn new(ckb: &'a Ckb, side: Option<&'a SideKb>) -> Self {
        Self { ckb, side }
    }
}

impl LinkContext for CkbLinkContext<'_> {
    fn entity_name(&self, id: EntityId) -> Option<String> {
        (id.idx() < self.ckb.num_entities()).then(|| self.ckb.entity(id).name.clone())
    }

    fn relation_name(&self, id: RelationId) -> Option<String> {
        (id.idx() < self.ckb.num_relations()).then(|| self.ckb.relation(id).name.clone())
    }

    fn side_entities(&self, surface: &str) -> Vec<(EntityId, f64)> {
        let Some(side) = self.side else { return Vec::new() };
        let rows = |key: &str| -> Vec<(EntityId, f64)> {
            side.entity_links(key)
                .iter()
                .filter_map(|l| {
                    self.ckb.entity_by_name(side.resolve(l.target)).map(|id| (id, l.weight))
                })
                .collect()
        };
        with_determiner_fallback(surface, rows)
    }

    fn side_relations(&self, surface: &str) -> Vec<(RelationId, f64)> {
        let Some(side) = self.side else { return Vec::new() };
        side.relation_links(surface)
            .iter()
            .filter_map(|l| {
                self.ckb.relation_by_name(side.resolve(l.target)).map(|id| (id, l.weight))
            })
            .collect()
    }
}

/// NP surface lookup falls back to the determiner-stripped key, exactly
/// as the inference-side injection does (`jocl_core`'s side lookup), so
/// the factors and the serving answer agree on which rows apply.
pub(crate) fn with_determiner_fallback<T>(
    surface: &str,
    lookup: impl Fn(&str) -> Vec<T>,
) -> Vec<T> {
    let rows = lookup(surface);
    if rows.is_empty() {
        if let Some(stripped) = surface.trim().strip_prefix("the ") {
            return lookup(stripped);
        }
    }
    rows
}

/// Shared implementation of `ServeSession::link` and `ReadView::link`:
/// resolve `req.target` against the committed decode (`out`) plus the
/// context's side information. `None` output (pre-delta session) still
/// answers surface targets from the side table alone.
pub(crate) fn link_of(
    okb: &Okb,
    is_live: &dyn Fn(TripleId) -> bool,
    out: Option<&JoclOutput>,
    ctx: &dyn LinkContext,
    req: &LinkRequest,
    default_threshold: f64,
) -> LinkReport {
    let limit = req.limit.unwrap_or(DEFAULT_LINK_LIMIT);
    let threshold = req.threshold.unwrap_or(default_threshold);
    let (mut np, mut rp) = match (&req.target, out) {
        (LinkTarget::Surface(phrase), _) => surface_candidates(okb, is_live, out, ctx, phrase),
        (_, None) => (Vec::new(), Vec::new()),
        (&LinkTarget::NpCluster(c), Some(out)) => {
            (cluster_candidates::<NpFamily>(okb, is_live, out, ctx, c), Vec::new())
        }
        (&LinkTarget::RpCluster(c), Some(out)) => {
            (Vec::new(), cluster_candidates::<RpFamily>(okb, is_live, out, ctx, c))
        }
        (&LinkTarget::Entity(e), Some(out)) => {
            (reverse_candidates::<NpFamily>(okb, is_live, out, EntityId(e)), Vec::new())
        }
        (&LinkTarget::Relation(r), Some(out)) => {
            (Vec::new(), reverse_candidates::<RpFamily>(okb, is_live, out, RelationId(r)))
        }
    };
    for cands in [&mut np, &mut rp] {
        cands.retain(|c| c.confidence >= threshold);
        // Confidence descending, URI ascending: a total, plane-invariant
        // order (candidate *construction* order may differ between the
        // session and captured-view planes).
        cands.sort_by(|a, b| b.confidence.total_cmp(&a.confidence).then_with(|| a.uri.cmp(&b.uri)));
        cands.truncate(limit);
    }
    LinkReport { target: req.target.to_string(), np, rp }
}

/// The two mention families, abstracted just enough for the candidate
/// builders to be written once.
trait Family {
    type Target: Copy + Eq + std::hash::Hash;
    const SCHEME: &'static str; // jocl://<scheme>/…
    const CKB_KIND: &'static str; // ckb://<kind>/…
    fn num_mentions(okb: &Okb) -> usize;
    fn mention_triple(dense: usize) -> TripleId;
    fn phrase(okb: &Okb, dense: usize) -> &str;
    fn cluster_of(out: &JoclOutput, dense: usize) -> u32;
    fn link_of_mention(out: &JoclOutput, dense: usize) -> Option<Self::Target>;
    fn target_id(t: Self::Target) -> u32;
    fn target_name(ctx: &dyn LinkContext, t: Self::Target) -> Option<String>;
}

struct NpFamily;
impl Family for NpFamily {
    type Target = EntityId;
    const SCHEME: &'static str = "np";
    const CKB_KIND: &'static str = "entity";
    fn num_mentions(okb: &Okb) -> usize {
        okb.num_np_mentions()
    }
    fn mention_triple(dense: usize) -> TripleId {
        NpMention::from_dense(dense).triple
    }
    fn phrase(okb: &Okb, dense: usize) -> &str {
        okb.np_phrase(NpMention::from_dense(dense))
    }
    fn cluster_of(out: &JoclOutput, dense: usize) -> u32 {
        out.np_clustering.cluster_of(dense)
    }
    fn link_of_mention(out: &JoclOutput, dense: usize) -> Option<EntityId> {
        out.np_links[dense]
    }
    fn target_id(t: EntityId) -> u32 {
        t.0
    }
    fn target_name(ctx: &dyn LinkContext, t: EntityId) -> Option<String> {
        ctx.entity_name(t)
    }
}

struct RpFamily;
impl Family for RpFamily {
    type Target = RelationId;
    const SCHEME: &'static str = "rp";
    const CKB_KIND: &'static str = "relation";
    fn num_mentions(okb: &Okb) -> usize {
        okb.num_rp_mentions()
    }
    fn mention_triple(dense: usize) -> TripleId {
        TripleId(dense as u32)
    }
    fn phrase(okb: &Okb, dense: usize) -> &str {
        okb.rp_phrase(RpMention(TripleId(dense as u32)))
    }
    fn cluster_of(out: &JoclOutput, dense: usize) -> u32 {
        out.rp_clustering.cluster_of(dense)
    }
    fn link_of_mention(out: &JoclOutput, dense: usize) -> Option<RelationId> {
        out.rp_links[dense]
    }
    fn target_id(t: RelationId) -> u32 {
        t.0
    }
    fn target_name(ctx: &dyn LinkContext, t: RelationId) -> Option<String> {
        ctx.relation_name(t)
    }
}

/// Canonical label of a cluster: the most frequent phrase among its
/// live members, ties to the lexicographically smallest.
fn cluster_label(phrase_counts: &FxHashMap<&str, usize>) -> String {
    phrase_counts
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
        .map(|(p, _)| (*p).to_string())
        .unwrap_or_else(|| "?".to_string())
}

fn jocl_uri<F: Family>(cluster: u32, label: &str) -> String {
    format!("jocl://{}/{cluster}/{}", F::SCHEME, slug(label))
}

fn ckb_uri<F: Family>(id: u32, label: &str) -> String {
    format!("ckb://{}/{id}/{}", F::CKB_KIND, slug(label))
}

/// Vote-share candidates for one family of a surface target: the
/// matched mentions' clusters and decoded links, then side-table rows
/// for targets the decode did not already nominate.
fn surface_family<F: Family>(
    okb: &Okb,
    is_live: &dyn Fn(TripleId) -> bool,
    out: Option<&JoclOutput>,
    ctx: &dyn LinkContext,
    needle: &str,
    side_rows: &[(F::Target, f64)],
) -> Vec<LinkCandidate> {
    let mut cands = Vec::new();
    if let Some(out) = out {
        let matched: Vec<usize> = (0..F::num_mentions(okb))
            .filter(|&d| {
                is_live(F::mention_triple(d)) && F::phrase(okb, d).to_lowercase() == needle
            })
            .collect();
        if !matched.is_empty() {
            let total = matched.len() as f64;
            let mut cluster_votes: FxHashMap<u32, usize> = FxHashMap::default();
            let mut target_votes: FxHashMap<F::Target, usize> = FxHashMap::default();
            for &d in &matched {
                *cluster_votes.entry(F::cluster_of(out, d)).or_default() += 1;
                if let Some(t) = F::link_of_mention(out, d) {
                    *target_votes.entry(t).or_default() += 1;
                }
            }
            // One sweep for the matched clusters' live sizes and labels.
            let mut sizes: FxHashMap<u32, usize> = FxHashMap::default();
            let mut labels: FxHashMap<u32, FxHashMap<&str, usize>> = FxHashMap::default();
            for d in 0..F::num_mentions(okb) {
                if !is_live(F::mention_triple(d)) {
                    continue;
                }
                let c = F::cluster_of(out, d);
                if cluster_votes.contains_key(&c) {
                    *sizes.entry(c).or_default() += 1;
                    *labels.entry(c).or_default().entry(F::phrase(okb, d)).or_default() += 1;
                }
            }
            // Candidates are emitted in sorted id order: the response
            // bytes must not depend on hash-map iteration order (R4).
            let mut ordered_clusters: Vec<(u32, usize)> = cluster_votes.into_iter().collect();
            ordered_clusters.sort_unstable_by_key(|&(c, _)| c);
            for (c, votes) in ordered_clusters {
                let label = cluster_label(&labels[&c]);
                cands.push(LinkCandidate {
                    uri: jocl_uri::<F>(c, &label),
                    label,
                    confidence: votes as f64 / total,
                    support: votes,
                    cluster_size: sizes[&c],
                });
            }
            let mut ordered_targets: Vec<(F::Target, usize)> = target_votes.into_iter().collect();
            ordered_targets.sort_unstable_by_key(|&(t, _)| F::target_id(t));
            for (t, votes) in ordered_targets {
                let label = F::target_name(ctx, t).unwrap_or_else(|| "?".to_string());
                cands.push(LinkCandidate {
                    uri: ckb_uri::<F>(F::target_id(t), &label),
                    label,
                    confidence: votes as f64 / total,
                    support: votes,
                    cluster_size: 0,
                });
            }
        }
    }
    // Side-table rows: dictionary evidence for targets the decode has
    // not already nominated (decoded votes win on a shared URI).
    for &(t, weight) in side_rows {
        let label = F::target_name(ctx, t).unwrap_or_else(|| "?".to_string());
        let uri = ckb_uri::<F>(F::target_id(t), &label);
        if cands.iter().any(|c| c.uri == uri) {
            continue;
        }
        cands.push(LinkCandidate { uri, label, confidence: weight, support: 0, cluster_size: 0 });
    }
    cands
}

fn surface_candidates(
    okb: &Okb,
    is_live: &dyn Fn(TripleId) -> bool,
    out: Option<&JoclOutput>,
    ctx: &dyn LinkContext,
    phrase: &str,
) -> (Vec<LinkCandidate>, Vec<LinkCandidate>) {
    let needle = phrase.trim().to_lowercase();
    let np =
        surface_family::<NpFamily>(okb, is_live, out, ctx, &needle, &ctx.side_entities(&needle));
    let rp =
        surface_family::<RpFamily>(okb, is_live, out, ctx, &needle, &ctx.side_relations(&needle));
    (np, rp)
}

/// Candidates for a cluster target: the cluster itself (confidence 1 —
/// it *is* the canonical entity) plus its members' decoded links as
/// vote shares over the live membership. An unknown or fully retracted
/// cluster id yields an empty report.
fn cluster_candidates<F: Family>(
    okb: &Okb,
    is_live: &dyn Fn(TripleId) -> bool,
    out: &JoclOutput,
    ctx: &dyn LinkContext,
    cluster: u32,
) -> Vec<LinkCandidate> {
    let mut members = 0usize;
    let mut labels: FxHashMap<&str, usize> = FxHashMap::default();
    let mut target_votes: FxHashMap<F::Target, usize> = FxHashMap::default();
    for d in 0..F::num_mentions(okb) {
        if !is_live(F::mention_triple(d)) || F::cluster_of(out, d) != cluster {
            continue;
        }
        members += 1;
        *labels.entry(F::phrase(okb, d)).or_default() += 1;
        if let Some(t) = F::link_of_mention(out, d) {
            *target_votes.entry(t).or_default() += 1;
        }
    }
    if members == 0 {
        return Vec::new();
    }
    let label = cluster_label(&labels);
    let mut cands = vec![LinkCandidate {
        uri: jocl_uri::<F>(cluster, &label),
        label,
        confidence: 1.0,
        support: members,
        cluster_size: members,
    }];
    // Sorted target order: response bytes must not depend on hash-map
    // iteration order (R4).
    let mut ordered_targets: Vec<(F::Target, usize)> = target_votes.into_iter().collect();
    ordered_targets.sort_unstable_by_key(|&(t, _)| F::target_id(t));
    for (t, votes) in ordered_targets {
        let label = F::target_name(ctx, t).unwrap_or_else(|| "?".to_string());
        cands.push(LinkCandidate {
            uri: ckb_uri::<F>(F::target_id(t), &label),
            label,
            confidence: votes as f64 / members as f64,
            support: votes,
            cluster_size: members,
        });
    }
    cands
}

/// Reverse lookup for a curated-KB target: every live cluster with at
/// least one member decoded to it, confidence = linked members / live
/// cluster size.
fn reverse_candidates<F: Family>(
    okb: &Okb,
    is_live: &dyn Fn(TripleId) -> bool,
    out: &JoclOutput,
    target: F::Target,
) -> Vec<LinkCandidate> {
    let mut sizes: FxHashMap<u32, usize> = FxHashMap::default();
    let mut votes: FxHashMap<u32, usize> = FxHashMap::default();
    let mut labels: FxHashMap<u32, FxHashMap<&str, usize>> = FxHashMap::default();
    for d in 0..F::num_mentions(okb) {
        if !is_live(F::mention_triple(d)) {
            continue;
        }
        let c = F::cluster_of(out, d);
        *sizes.entry(c).or_default() += 1;
        *labels.entry(c).or_default().entry(F::phrase(okb, d)).or_default() += 1;
        if F::link_of_mention(out, d) == Some(target) {
            *votes.entry(c).or_default() += 1;
        }
    }
    // Sorted cluster order: response bytes must not depend on hash-map
    // iteration order (R4).
    let mut ordered_votes: Vec<(u32, usize)> = votes.into_iter().collect();
    ordered_votes.sort_unstable_by_key(|&(c, _)| c);
    ordered_votes
        .into_iter()
        .map(|(c, v)| {
            let label = cluster_label(&labels[&c]);
            LinkCandidate {
                uri: jocl_uri::<F>(c, &label),
                label,
                confidence: v as f64 / sizes[&c] as f64,
                support: v,
                cluster_size: sizes[&c],
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Wire serialization — the ONE path every plane uses.
// ---------------------------------------------------------------------

fn opt_id(id: Option<u32>) -> String {
    id.map_or_else(|| "-".to_string(), |v| v.to_string())
}

fn parse_opt_id(s: &str, what: &str) -> Result<Option<u32>, WireError> {
    if s == "-" {
        return Ok(None);
    }
    s.parse().map(Some).map_err(|_| {
        WireError::new(ErrCode::Parse, format!("bad {what} field {s:?} in a query.v1 frame"))
    })
}

/// Serialize a `query` answer (`query.v1` — see the module docs for the
/// field order contract).
pub fn format_query(phrase: &str, reports: &[MentionReport]) -> Vec<String> {
    let mut lines = vec![format!("query.v1 matches={} {phrase}", reports.len())];
    for r in reports {
        lines.push(format!(
            "mention #{} {} cluster={} entity={} relation={} {:?} {:?}",
            r.triple.0,
            r.role,
            r.cluster_size,
            opt_id(r.entity.map(|e| e.0)),
            opt_id(r.relation.map(|x| x.0)),
            r.phrase,
            r.cluster_phrases,
        ));
    }
    lines
}

/// The fixed-prefix fields of one parsed `query.v1` mention line (the
/// trailing phrase/cluster-phrase text is kept raw in `detail`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedMention {
    /// Owning triple id.
    pub triple: u32,
    /// Mention role.
    pub role: String,
    /// Live cluster size.
    pub cluster_size: usize,
    /// Linked entity id.
    pub entity: Option<u32>,
    /// Linked relation id.
    pub relation: Option<u32>,
    /// The human tail: quoted phrase + cluster phrase list.
    pub detail: String,
}

/// A parsed `query.v1` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedQuery {
    /// Echoed phrase.
    pub phrase: String,
    /// One row per matching live mention.
    pub mentions: Vec<ParsedMention>,
}

/// Parse a `query.v1` frame (client side). Every malformed variant is a
/// typed [`ErrCode::Parse`] error.
pub fn parse_query(lines: &[String]) -> Result<ParsedQuery, WireError> {
    let bad = |msg: String| WireError::new(ErrCode::Parse, msg);
    let header = lines.first().ok_or_else(|| bad("empty query frame".into()))?;
    let rest = header
        .strip_prefix("query.v1 ")
        .ok_or_else(|| bad(format!("not a query.v1 frame: {header:?}")))?;
    let (matches, phrase) = rest.split_once(' ').unwrap_or((rest, ""));
    let matches: usize = matches
        .strip_prefix("matches=")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| bad(format!("query.v1 header needs matches=<n>, got {header:?}")))?;
    if lines.len() != matches + 1 {
        return Err(bad(format!(
            "query.v1 frame announces {matches} mentions but carries {}",
            lines.len() - 1
        )));
    }
    let mut mentions = Vec::with_capacity(matches);
    for line in &lines[1..] {
        let mut f = line.splitn(7, ' ');
        let fields: Vec<&str> = (&mut f).take(6).collect();
        let detail = f.next().unwrap_or("").to_string();
        let [marker, triple, role, cluster, entity, relation] = fields.as_slice() else {
            return Err(bad(format!("truncated query.v1 mention line {line:?}")));
        };
        if *marker != "mention" {
            return Err(bad(format!("query.v1 mention line must start 'mention', got {line:?}")));
        }
        let triple: u32 = triple
            .strip_prefix('#')
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad(format!("bad triple field {triple:?} in a query.v1 frame")))?;
        if !matches!(*role, "subject" | "object" | "predicate") {
            return Err(bad(format!("bad role {role:?} in a query.v1 frame")));
        }
        let cluster_size: usize = cluster
            .strip_prefix("cluster=")
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| bad(format!("bad cluster field {cluster:?} in a query.v1 frame")))?;
        let entity = parse_opt_id(
            entity
                .strip_prefix("entity=")
                .ok_or_else(|| bad(format!("bad entity field {entity:?} in a query.v1 frame")))?,
            "entity",
        )?;
        let relation = parse_opt_id(
            relation.strip_prefix("relation=").ok_or_else(|| {
                bad(format!("bad relation field {relation:?} in a query.v1 frame"))
            })?,
            "relation",
        )?;
        mentions.push(ParsedMention {
            triple,
            role: (*role).to_string(),
            cluster_size,
            entity,
            relation,
            detail,
        });
    }
    Ok(ParsedQuery { phrase: phrase.to_string(), mentions })
}

/// Serialize a `link` answer (`link.v1` — see the module docs for the
/// field order contract).
pub fn format_link(report: &LinkReport) -> Vec<String> {
    let mut lines = Vec::with_capacity(1 + report.np.len() + report.rp.len());
    lines.push(format!("link.v1 np={} rp={} {}", report.np.len(), report.rp.len(), report.target));
    for (family, cands) in [("np", &report.np), ("rp", &report.rp)] {
        for c in cands {
            let label = if c.label.is_empty() { "?" } else { &c.label };
            lines.push(format!(
                "{family} {} {} {} {} {label}",
                c.uri, c.confidence, c.support, c.cluster_size
            ));
        }
    }
    lines
}

/// Parse a `link.v1` frame (client side). Every malformed variant is a
/// typed [`ErrCode::Parse`] error; confidences round-trip bit for bit.
pub fn parse_link(lines: &[String]) -> Result<LinkReport, WireError> {
    let bad = |msg: String| WireError::new(ErrCode::Parse, msg);
    let header = lines.first().ok_or_else(|| bad("empty link frame".into()))?;
    let rest = header
        .strip_prefix("link.v1 ")
        .ok_or_else(|| bad(format!("not a link.v1 frame: {header:?}")))?;
    let mut parts = rest.splitn(3, ' ');
    let counts: Vec<usize> = [("np=", parts.next()), ("rp=", parts.next())]
        .into_iter()
        .map(|(key, tok)| {
            tok.and_then(|t| t.strip_prefix(key))
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| bad(format!("link.v1 header needs np=<n> rp=<m>, got {header:?}")))
        })
        .collect::<Result<_, _>>()?;
    let target = parts.next().unwrap_or("").to_string();
    if target.is_empty() {
        return Err(bad(format!("link.v1 header is missing the target: {header:?}")));
    }
    let (n_np, n_rp) = (counts[0], counts[1]);
    if lines.len() != 1 + n_np + n_rp {
        return Err(bad(format!(
            "link.v1 frame announces {} candidates but carries {}",
            n_np + n_rp,
            lines.len() - 1
        )));
    }
    let parse_cand = |line: &String, family: &str| -> Result<LinkCandidate, WireError> {
        let mut f = line.splitn(6, ' ');
        let fields: Vec<&str> = (&mut f).take(5).collect();
        let label = f.next().unwrap_or("").to_string();
        let [marker, uri, confidence, support, cluster_size] = fields.as_slice() else {
            return Err(bad(format!("truncated link.v1 candidate line {line:?}")));
        };
        if *marker != family {
            return Err(bad(format!(
                "link.v1 candidate line out of order: expected {family:?}, got {line:?}"
            )));
        }
        let confidence: f64 = confidence
            .parse()
            .map_err(|_| bad(format!("bad confidence {confidence:?} in a link.v1 frame")))?;
        if !(0.0..=1.0).contains(&confidence) {
            return Err(bad(format!("confidence {confidence} out of [0, 1] in a link.v1 frame")));
        }
        let support: usize = support
            .parse()
            .map_err(|_| bad(format!("bad support {support:?} in a link.v1 frame")))?;
        let cluster_size: usize = cluster_size
            .parse()
            .map_err(|_| bad(format!("bad cluster size {cluster_size:?} in a link.v1 frame")))?;
        if label.is_empty() {
            return Err(bad(format!("link.v1 candidate line is missing the label: {line:?}")));
        }
        Ok(LinkCandidate { uri: (*uri).to_string(), label, confidence, support, cluster_size })
    };
    let np = lines[1..1 + n_np].iter().map(|l| parse_cand(l, "np")).collect::<Result<_, _>>()?;
    let rp = lines[1 + n_np..].iter().map(|l| parse_cand(l, "rp")).collect::<Result<_, _>>()?;
    Ok(LinkReport { target, np, rp })
}

/// Serialize the `stats` answer (`stats.v1` — one line, fixed field
/// order; see the module docs). The density uses `f64`'s
/// shortest-roundtrip `Display`, so [`parse_stats`] reproduces the
/// server's float bit for bit.
pub fn format_stats(s: &SessionStats) -> String {
    format!(
        "stats.v1 triples={} live={} vars={} factors={} density={} ops={} compactions={} msg={} \
         heap_bytes={} version={} plane={} uptime_ms={} requests={} errors={} \
         last_compaction_ms={}",
        s.triples,
        s.live,
        s.vars,
        s.factors,
        s.tombstone_density,
        s.ops_applied,
        s.compactions,
        s.total_message_updates,
        s.heap_bytes,
        s.version,
        if s.replica { "replica" } else { "writer" },
        s.uptime_ms,
        s.requests,
        s.errors,
        s.last_compaction_ms,
    )
}

/// Parse a `stats.v1` line (client side). Every malformed variant is a
/// typed [`ErrCode::Parse`] error; a parsed line reproduces the
/// server's [`SessionStats`] exactly.
pub fn parse_stats(line: &str) -> Result<SessionStats, WireError> {
    let bad = |msg: String| WireError::new(ErrCode::Parse, msg);
    let rest = line
        .trim()
        .strip_prefix("stats.v1 ")
        .ok_or_else(|| bad(format!("not a stats.v1 line: {line:?}")))?;
    let mut fields = rest.split_whitespace();
    let mut field = |key: &str| -> Result<&str, WireError> {
        fields
            .next()
            .and_then(|tok| tok.strip_prefix(key))
            .and_then(|rest| rest.strip_prefix('='))
            .ok_or_else(|| bad(format!("stats.v1 line is missing {key}=<v>: {line:?}")))
    };
    fn num<T: std::str::FromStr>(s: &str, key: &str, line: &str) -> Result<T, WireError> {
        s.parse().map_err(|_| {
            WireError::new(ErrCode::Parse, format!("bad {key} field {s:?} in {line:?}"))
        })
    }
    let stats = SessionStats {
        triples: num(field("triples")?, "triples", line)?,
        live: num(field("live")?, "live", line)?,
        vars: num(field("vars")?, "vars", line)?,
        factors: num(field("factors")?, "factors", line)?,
        tombstone_density: num(field("density")?, "density", line)?,
        ops_applied: num(field("ops")?, "ops", line)?,
        compactions: num(field("compactions")?, "compactions", line)?,
        total_message_updates: num(field("msg")?, "msg", line)?,
        heap_bytes: num(field("heap_bytes")?, "heap_bytes", line)?,
        version: num(field("version")?, "version", line)?,
        replica: match field("plane")? {
            "writer" => false,
            "replica" => true,
            other => return Err(bad(format!("bad plane field {other:?} in {line:?}"))),
        },
        uptime_ms: num(field("uptime_ms")?, "uptime_ms", line)?,
        requests: num(field("requests")?, "requests", line)?,
        errors: num(field("errors")?, "errors", line)?,
        last_compaction_ms: num(field("last_compaction_ms")?, "last_compaction_ms", line)?,
    };
    if let Some(extra) = fields.next() {
        return Err(bad(format!("trailing field {extra:?} in a stats.v1 line")));
    }
    Ok(stats)
}

/// `name` or `name{labels}` with `suffix` appended to the bare name
/// (histogram series derive `_bucket`/`_count`/`_sum` keys this way).
fn suffix_key(key: &str, suffix: &str) -> String {
    match key.find('{') {
        Some(pos) => format!("{}{}{}", &key[..pos], suffix, &key[pos..]),
        None => format!("{key}{suffix}"),
    }
}

/// A histogram bucket key: the `_bucket` series with `le="…"` appended
/// to the label set (after the sorted registry labels).
fn bucket_key(key: &str, le: &str) -> String {
    let base = suffix_key(key, "_bucket");
    match base.strip_suffix('}') {
        Some(open) => format!("{open},le=\"{le}\"}}"),
        None => format!("{base}{{le=\"{le}\"}}"),
    }
}

/// Serialize a registry snapshot (`metrics.v1` — see the module docs
/// for the grammar and the byte-stability contract).
pub fn format_metrics(snap: &MetricsSnapshot) -> Vec<String> {
    let mut lines = Vec::with_capacity(snap.entries.len() + 1);
    for (key, value) in &snap.entries {
        match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => lines.push(format!("{key} {v}")),
            MetricValue::Histogram(h) => {
                // Finite bounds up to the last occupied one, elided
                // past it; the +Inf bucket (cumulative == count by
                // construction) always closes the series.
                let finite = &h.buckets[..h.buckets.len() - 1];
                let mut cumulative = 0u64;
                if let Some(last) = finite.iter().rposition(|&c| c != 0) {
                    for (i, &count) in finite.iter().enumerate().take(last + 1) {
                        cumulative += count;
                        let le = jocl_obs::metrics::bucket_le(i)
                            .expect("finite buckets have finite bounds")
                            .to_string();
                        lines.push(format!("{} {cumulative}", bucket_key(key, &le)));
                    }
                }
                lines.push(format!("{} {}", bucket_key(key, "+Inf"), h.count));
                lines.push(format!("{} {}", suffix_key(key, "_count"), h.count));
                lines.push(format!("{} {}", suffix_key(key, "_sum"), h.sum));
            }
        }
    }
    let mut out = Vec::with_capacity(lines.len() + 1);
    out.push(format!("metrics.v1 entries={}", lines.len()));
    out.extend(lines);
    out
}

/// Parse a `metrics.v1` frame (client side) into `(series_key, value)`
/// rows. Every malformed variant is a typed [`ErrCode::Parse`] error.
pub fn parse_metrics(lines: &[String]) -> Result<Vec<(String, u64)>, WireError> {
    let bad = |msg: String| WireError::new(ErrCode::Parse, msg);
    let header = lines.first().ok_or_else(|| bad("empty metrics frame".into()))?;
    let entries: usize = header
        .strip_prefix("metrics.v1 ")
        .and_then(|rest| rest.strip_prefix("entries="))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| bad(format!("not a metrics.v1 header: {header:?}")))?;
    if lines.len() != entries + 1 {
        return Err(bad(format!(
            "metrics.v1 frame announces {entries} series but carries {}",
            lines.len() - 1
        )));
    }
    lines[1..]
        .iter()
        .map(|line| {
            let (key, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| bad(format!("metrics.v1 series line needs a value: {line:?}")))?;
            let value: u64 = value
                .parse()
                .map_err(|_| bad(format!("bad value {value:?} in a metrics.v1 frame")))?;
            if key.is_empty() {
                return Err(bad(format!("metrics.v1 series line has no key: {line:?}")));
            }
            Ok((key.to_string(), value))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_targets_parse_and_display() {
        assert_eq!(parse_link_target("UMD").unwrap(), LinkTarget::Surface("UMD".into()));
        assert_eq!(
            parse_link_target("  the terps  ").unwrap(),
            LinkTarget::Surface("the terps".into())
        );
        assert_eq!(parse_link_target("jocl://np/3").unwrap(), LinkTarget::NpCluster(3));
        assert_eq!(parse_link_target("jocl://np/3/umd").unwrap(), LinkTarget::NpCluster(3));
        assert_eq!(parse_link_target("jocl://rp/0/be-part-of").unwrap(), LinkTarget::RpCluster(0));
        assert_eq!(parse_link_target("ckb://entity/17/x").unwrap(), LinkTarget::Entity(17));
        assert_eq!(parse_link_target("ckb://relation/2").unwrap(), LinkTarget::Relation(2));
        assert_eq!(LinkTarget::NpCluster(3).to_string(), "jocl://np/3");
        assert_eq!(LinkTarget::Surface("UMD".into()).to_string(), "UMD");
    }

    #[test]
    fn malformed_link_targets_are_typed_errors() {
        for bad in [
            "",
            "   ",
            "jocl://np",
            "jocl://np/",
            "jocl://np/banana",
            "jocl://banana/3",
            "ckb://entity/-1",
            "ckb://cluster/3",
            "http://example.com/3",
        ] {
            let e = parse_link_target(bad).unwrap_err();
            assert_eq!(e.code, ErrCode::Parse, "{bad:?} -> {e:?}");
        }
    }

    #[test]
    fn slugs_are_sanitized_and_bounded() {
        assert_eq!(slug("University of Maryland"), "university-of-maryland");
        assert_eq!(slug("  A/B  (c) "), "a-b-c");
        assert_eq!(slug("!!!"), "x");
        assert!(slug(&"long phrase ".repeat(20)).len() <= 32);
    }

    fn sample_report() -> LinkReport {
        LinkReport {
            target: "the university".to_string(),
            np: vec![
                LinkCandidate {
                    uri: "jocl://np/3/university-of-maryland".into(),
                    label: "university of maryland".into(),
                    confidence: 2.0 / 3.0,
                    support: 2,
                    cluster_size: 4,
                },
                LinkCandidate {
                    uri: "ckb://entity/17/university-of-maryland".into(),
                    label: "university of maryland".into(),
                    confidence: 0.85,
                    support: 0,
                    cluster_size: 0,
                },
            ],
            rp: vec![LinkCandidate {
                uri: "jocl://rp/1/be-part-of".into(),
                label: "be part of".into(),
                confidence: 1.0,
                support: 1,
                cluster_size: 1,
            }],
        }
    }

    #[test]
    fn link_frames_roundtrip_bit_for_bit() {
        let report = sample_report();
        let lines = format_link(&report);
        assert_eq!(lines[0], "link.v1 np=2 rp=1 the university");
        assert_eq!(parse_link(&lines).unwrap(), report, "shortest-roundtrip floats are exact");
        let empty = LinkReport { target: "jocl://np/999".into(), np: vec![], rp: vec![] };
        assert_eq!(parse_link(&format_link(&empty)).unwrap(), empty);
    }

    #[test]
    fn malformed_link_frames_are_typed_errors() {
        let ok = format_link(&sample_report());
        let mutate = |f: &dyn Fn(&mut Vec<String>)| {
            let mut lines = ok.clone();
            f(&mut lines);
            let e = parse_link(&lines).unwrap_err();
            assert_eq!(e.code, ErrCode::Parse, "{lines:?} -> {e:?}");
        };
        mutate(&|l| l.clear()); // empty frame
        mutate(&|l| l[0] = "link.v2 np=2 rp=1 x".into()); // wrong version
        mutate(&|l| l[0] = "link.v1 np=two rp=1 x".into()); // bad count
        mutate(&|l| l[0] = "link.v1 np=2 rp=1".into()); // missing target
        mutate(&|l| l[0] = "link.v1 rp=1 np=2 x".into()); // reordered fields
        mutate(&|l| {
            l.pop();
        }); // fewer lines than announced
        mutate(&|l| l.push("rp jocl://rp/2/x 0.5 1 1 x".into())); // more lines
        mutate(&|l| l[1] = "np jocl://np/3/u nan 2 4 u".into()); // bad confidence
        mutate(&|l| l[1] = "np jocl://np/3/u 1.5 2 4 u".into()); // out of range
        mutate(&|l| l[1] = "np jocl://np/3/u 0.5 two 4 u".into()); // bad support
        mutate(&|l| l[1] = "np jocl://np/3/u 0.5 2 4".into()); // missing label
        mutate(&|l| l[1] = "rp jocl://np/3/u 0.5 2 4 u".into()); // family out of order
    }

    #[test]
    fn query_frames_roundtrip_their_fixed_fields() {
        let reports = vec![
            MentionReport {
                triple: TripleId(4),
                role: "subject",
                phrase: "UMD".into(),
                cluster_size: 3,
                cluster_phrases: vec!["UMD".into(), "the university of maryland".into()],
                entity: Some(EntityId(17)),
                relation: None,
            },
            MentionReport {
                triple: TripleId(9),
                role: "predicate",
                phrase: "be part of".into(),
                cluster_size: 2,
                cluster_phrases: vec!["be part of".into()],
                entity: None,
                relation: Some(RelationId(2)),
            },
        ];
        let lines = format_query("umd", &reports);
        assert_eq!(lines[0], "query.v1 matches=2 umd");
        let parsed = parse_query(&lines).unwrap();
        assert_eq!(parsed.phrase, "umd");
        assert_eq!(parsed.mentions.len(), 2);
        assert_eq!(parsed.mentions[0].triple, 4);
        assert_eq!(parsed.mentions[0].role, "subject");
        assert_eq!(parsed.mentions[0].cluster_size, 3);
        assert_eq!(parsed.mentions[0].entity, Some(17));
        assert_eq!(parsed.mentions[0].relation, None);
        assert!(parsed.mentions[0].detail.contains("the university of maryland"));
        assert_eq!(parsed.mentions[1].relation, Some(2));
        let none = format_query("ghost", &[]);
        assert_eq!(none, vec!["query.v1 matches=0 ghost".to_string()]);
        assert!(parse_query(&none).unwrap().mentions.is_empty());
    }

    #[test]
    fn malformed_query_frames_are_typed_errors() {
        let bad_frames: Vec<Vec<String>> = vec![
            vec![],
            vec!["query.v2 matches=0 x".into()],
            vec!["query.v1 x".into()],
            vec!["query.v1 matches=two x".into()],
            vec!["query.v1 matches=1 x".into()], // fewer mention lines than announced
            vec!["query.v1 matches=0 x".into(), "mention #1 subject".into()],
            vec![
                "query.v1 matches=1 x".into(),
                "mention 1 subject cluster=2 entity=- relation=- \"x\" []".into(), // missing '#'
            ],
            vec![
                "query.v1 matches=1 x".into(),
                "mention #1 verb cluster=2 entity=- relation=- \"x\" []".into(), // bad role
            ],
            vec![
                "query.v1 matches=1 x".into(),
                "mention #1 subject cluster=big entity=- relation=- \"x\" []".into(),
            ],
            vec![
                "query.v1 matches=1 x".into(),
                "mention #1 subject cluster=2 entity=e relation=- \"x\" []".into(),
            ],
            vec![
                "query.v1 matches=1 x".into(),
                "mention #1 subject entity=- cluster=2 relation=- \"x\" []".into(), // reordered
            ],
        ];
        for frame in bad_frames {
            let e = parse_query(&frame).unwrap_err();
            assert_eq!(e.code, ErrCode::Parse, "{frame:?} -> {e:?}");
        }
    }

    fn sample_stats() -> SessionStats {
        SessionStats {
            triples: 21,
            live: 19,
            vars: 40,
            factors: 77,
            tombstone_density: 0.096_774_193_548_387_1,
            ops_applied: 9,
            compactions: 1,
            total_message_updates: 123_456,
            version: 7,
            replica: false,
            heap_bytes: 1_234_567,
            uptime_ms: 98_765,
            requests: 42,
            errors: 3,
            last_compaction_ms: 12,
        }
    }

    /// One-path discipline, same as `query.v1`/`link.v1`: the client
    /// parser reproduces the server struct exactly — the f64 density
    /// included, via shortest-roundtrip `Display`.
    #[test]
    fn stats_frames_roundtrip_bit_for_bit() {
        let stats = sample_stats();
        let line = format_stats(&stats);
        assert!(line.starts_with("stats.v1 triples=21 live=19 "), "{line}");
        assert_eq!(parse_stats(&line).unwrap(), stats);

        let replica = SessionStats { replica: true, ..stats };
        let line = format_stats(&replica);
        assert!(line.contains("plane=replica"), "{line}");
        assert_eq!(parse_stats(&line).unwrap(), replica);
    }

    #[test]
    fn malformed_stats_lines_are_typed_errors() {
        let good = format_stats(&sample_stats());
        let bad_lines: Vec<String> = vec![
            String::new(),
            "stats.v2 triples=1".into(),
            good.replacen("stats.v1 ", "", 1), // no version tag
            good.replacen("triples=", "triple=", 1), // wrong key
            good.replacen("triples=21", "triples=x", 1), // non-numeric
            good.replacen("density=", "density=not", 1), // bad f64
            good.replacen("plane=writer", "plane=cache", 1), // unknown plane
            good.replacen(" live=19", "", 1),  // missing field
            format!("{good} extra=1"),         // trailing field
            good.replacen(" uptime_ms=", " requests=0 uptime_ms=", 1), // reordered/extra
        ];
        for line in bad_lines {
            let e = parse_stats(&line).unwrap_err();
            assert_eq!(e.code, ErrCode::Parse, "{line:?} -> {e:?}");
        }
    }

    fn sample_metrics_snapshot() -> MetricsSnapshot {
        let mut hist = jocl_obs::HistogramSnapshot {
            buckets: [0; jocl_obs::metrics::BUCKETS],
            count: 7,
            sum: 74,
        };
        hist.buckets[0] = 3; // values ≤ 1
        hist.buckets[3] = 3; // values in (4, 8]
        hist.buckets[jocl_obs::metrics::BUCKETS - 1] = 1; // overflow
        MetricsSnapshot {
            entries: vec![
                ("jocl_err_total{code=\"parse\",plane=\"writer\"}".into(), MetricValue::Counter(2)),
                ("jocl_net_active_connections".into(), MetricValue::Gauge(4)),
                (
                    "jocl_request_ns{cmd=\"query\",plane=\"writer\"}".into(),
                    MetricValue::Histogram(Box::new(hist)),
                ),
            ],
        }
    }

    /// The `metrics.v1` grammar: a counted header, `key value` series
    /// lines, histograms as cumulative finite buckets (elided past the
    /// last occupied) closed by `+Inf` == `_count`, then `_sum` — with
    /// the suffix inserted before the label set.
    #[test]
    fn metrics_frames_expose_histograms_cumulatively_and_roundtrip() {
        let frame = format_metrics(&sample_metrics_snapshot());
        let expected = vec![
            "metrics.v1 entries=9".to_string(),
            "jocl_err_total{code=\"parse\",plane=\"writer\"} 2".into(),
            "jocl_net_active_connections 4".into(),
            "jocl_request_ns_bucket{cmd=\"query\",plane=\"writer\",le=\"1\"} 3".into(),
            "jocl_request_ns_bucket{cmd=\"query\",plane=\"writer\",le=\"2\"} 3".into(),
            "jocl_request_ns_bucket{cmd=\"query\",plane=\"writer\",le=\"4\"} 3".into(),
            "jocl_request_ns_bucket{cmd=\"query\",plane=\"writer\",le=\"8\"} 6".into(),
            "jocl_request_ns_bucket{cmd=\"query\",plane=\"writer\",le=\"+Inf\"} 7".into(),
            "jocl_request_ns_count{cmd=\"query\",plane=\"writer\"} 7".into(),
            "jocl_request_ns_sum{cmd=\"query\",plane=\"writer\"} 74".into(),
        ];
        assert_eq!(frame, expected);
        let parsed = parse_metrics(&frame).unwrap();
        assert_eq!(parsed.len(), 9);
        assert_eq!(parsed[0], ("jocl_err_total{code=\"parse\",plane=\"writer\"}".to_string(), 2));
        assert_eq!(
            parsed[8],
            ("jocl_request_ns_sum{cmd=\"query\",plane=\"writer\"}".to_string(), 74)
        );

        // An empty histogram still closes its series: +Inf, _count, _sum.
        let empty = MetricsSnapshot {
            entries: vec![(
                "jocl_blocking_ns".into(),
                MetricValue::Histogram(Box::new(jocl_obs::HistogramSnapshot {
                    buckets: [0; jocl_obs::metrics::BUCKETS],
                    count: 0,
                    sum: 0,
                })),
            )],
        };
        assert_eq!(
            format_metrics(&empty),
            vec![
                "metrics.v1 entries=3".to_string(),
                "jocl_blocking_ns_bucket{le=\"+Inf\"} 0".into(),
                "jocl_blocking_ns_count 0".into(),
                "jocl_blocking_ns_sum 0".into(),
            ]
        );
    }

    #[test]
    fn malformed_metrics_frames_are_typed_errors() {
        let bad_frames: Vec<Vec<String>> = vec![
            vec![],
            vec!["metrics.v2 entries=0".into()],
            vec!["metrics.v1 entries=two".into()],
            vec!["metrics.v1 entries=2".into(), "jocl_x 1".into()], // count mismatch
            vec!["metrics.v1 entries=1".into(), "jocl_x".into()],   // no value
            vec!["metrics.v1 entries=1".into(), "jocl_x one".into()], // bad value
            vec!["metrics.v1 entries=1".into(), " 1".into()],       // no key
        ];
        for frame in bad_frames {
            let e = parse_metrics(&frame).unwrap_err();
            assert_eq!(e.code, ErrCode::Parse, "{frame:?} -> {e:?}");
        }
    }
}
