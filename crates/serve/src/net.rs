//! The socket front-end: the serve loop behind a line-protocol
//! listener (TCP or unix-domain, per [`ListenAddr`]).
//!
//! Threading model — **single writer, concurrent readers**:
//!
//! * one **writer thread** owns the [`Engine`] outright; every
//!   state-changing command is shipped to it over a channel and
//!   answered with a per-request reply channel, so writes serialize by
//!   construction (no lock on the factor graph at all);
//! * each accepted connection gets a **handler thread** that parses
//!   lines and answers `query`/`link`/`stats` directly from the published
//!   [`SharedView`] — readers never wait for an in-flight delta, they
//!   see the last committed decode;
//! * after each committed write (and each replica catch-up batch) the
//!   writer captures a fresh [`ReadView`](crate::view::ReadView) and
//!   swaps it in atomically.
//!
//! On a follower engine the writer thread doubles as the replication
//! poller: idle channel ticks run [`Engine::poll_feed`] and republish
//! the view when the replica advanced.
//!
//! Lifecycle: `shutdown` (or an external flip of the `stop` flag) stops
//! the accept loop, handler threads drain on their read timeouts, the
//! writer exits when the last request sender drops, and [`serve`]
//! returns the engine so the caller can print totals / export state —
//! the serve loop *returns*, it does not `exit()`.

use crate::api::{format_link, format_metrics, format_query, format_stats};
use crate::engine::Engine;
use crate::obs;
use crate::protocol::{parse_command, Command, Response, WireError};
use crate::view::SharedView;
use jocl_obs::Stopwatch;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// How long an idle connection or writer waits before re-checking the
/// stop flag (and, on followers, polling the replication log).
const TICK: Duration = Duration::from_millis(25);

/// A listener address: `tcp:HOST:PORT` or `unix:PATH`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP bind address (`HOST:PORT`; port 0 picks a free port, the
    /// resolved address is reported via [`serve`]'s `ready` callback).
    Tcp(String),
    /// A unix-domain socket path (a stale socket file is replaced).
    Unix(PathBuf),
}

impl ListenAddr {
    /// Parse a listen spec. Accepted forms: `tcp:HOST:PORT`,
    /// `unix:PATH`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if let Some(addr) = spec.strip_prefix("tcp:") {
            if addr.rsplit_once(':').is_none() {
                return Err(format!("tcp listen spec needs HOST:PORT, got {addr:?}"));
            }
            Ok(ListenAddr::Tcp(addr.to_string()))
        } else if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix listen spec needs a socket path".to_string());
            }
            Ok(ListenAddr::Unix(PathBuf::from(path)))
        } else {
            Err(format!("listen spec must be 'tcp:HOST:PORT' or 'unix:PATH', got {spec:?}"))
        }
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Tcp(a) => write!(f, "tcp:{a}"),
            ListenAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// Front-end counters, returned by [`serve`] for the epilogue line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request lines answered (OK or ERR).
    pub requests: u64,
    /// ERR responses sent.
    pub errors: u64,
}

enum AnyListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

enum AnyStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl AnyListener {
    fn bind(addr: &ListenAddr) -> std::io::Result<(Self, ListenAddr)> {
        match addr {
            ListenAddr::Tcp(spec) => {
                let l = TcpListener::bind(spec)?;
                let resolved = ListenAddr::Tcp(l.local_addr()?.to_string());
                Ok((AnyListener::Tcp(l), resolved))
            }
            #[cfg(unix)]
            ListenAddr::Unix(path) => {
                // A previous process's socket file blocks the bind;
                // binding is the claim of ownership here.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                Ok((AnyListener::Unix(l), ListenAddr::Unix(path.clone())))
            }
            #[cfg(not(unix))]
            ListenAddr::Unix(_) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets are unavailable on this platform",
            )),
        }
    }

    fn set_nonblocking(&self, v: bool) -> std::io::Result<()> {
        match self {
            AnyListener::Tcp(l) => l.set_nonblocking(v),
            #[cfg(unix)]
            AnyListener::Unix(l) => l.set_nonblocking(v),
        }
    }

    fn accept(&self) -> std::io::Result<AnyStream> {
        match self {
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| AnyStream::Tcp(s)),
            #[cfg(unix)]
            AnyListener::Unix(l) => l.accept().map(|(s, _)| AnyStream::Unix(s)),
        }
    }
}

impl AnyStream {
    fn try_clone(&self) -> std::io::Result<AnyStream> {
        match self {
            AnyStream::Tcp(s) => s.try_clone().map(AnyStream::Tcp),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.try_clone().map(AnyStream::Unix),
        }
    }

    fn set_read_timeout(&self, d: Duration) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_read_timeout(Some(d)),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_read_timeout(Some(d)),
        }
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

struct WriteReq {
    cmd: Command,
    reply: mpsc::Sender<Response>,
}

struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

/// Run the serve loop behind a listener until `stop` is set (a client
/// `shutdown`, or the caller flipping it). Returns the engine — with
/// all state — and the front-end counters. `ready` fires once with the
/// resolved bind address (the way to learn the port after `tcp:…:0`).
pub fn serve<'a>(
    engine: Engine<'a>,
    addr: &ListenAddr,
    stop: &AtomicBool,
    ready: &mut dyn FnMut(&ListenAddr),
) -> std::io::Result<(Engine<'a>, NetStats)> {
    let (listener, resolved) = AnyListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    ready(&resolved);

    let view = SharedView::new(engine.read_view());
    let counters = Counters {
        connections: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
    };
    let (tx, rx) = mpsc::channel::<WriteReq>();

    let engine = std::thread::scope(|s| {
        let writer = s.spawn(|| writer_loop(engine, rx, &view, stop));
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok(stream) => {
                    counters.connections.fetch_add(1, Ordering::Relaxed);
                    let tx = tx.clone();
                    let view = &view;
                    let counters = &counters;
                    s.spawn(move || handle_connection(stream, tx, view, stop, counters));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        // Dropping the accept loop's sender lets the writer exit once
        // every handler thread (each holding a clone) has drained.
        drop(tx);
        writer.join().expect("writer thread panicked")
    });

    if let ListenAddr::Unix(path) = &resolved {
        let _ = std::fs::remove_file(path);
    }
    let stats = NetStats {
        connections: counters.connections.load(Ordering::Relaxed),
        requests: counters.requests.load(Ordering::Relaxed),
        errors: counters.errors.load(Ordering::Relaxed),
    };
    Ok((engine, stats))
}

fn writer_loop<'a, 'e>(
    mut engine: Engine<'e>,
    rx: mpsc::Receiver<WriteReq>,
    view: &'a SharedView,
    stop: &'a AtomicBool,
) -> Engine<'e> {
    loop {
        match rx.recv_timeout(TICK) {
            Ok(req) => {
                let resp = match &req.cmd {
                    Command::Shutdown => {
                        stop.store(true, Ordering::Relaxed);
                        engine.execute_caught(&req.cmd)
                    }
                    cmd => {
                        let resp = engine.execute_caught(cmd);
                        // Republish unconditionally: even an errored or
                        // panicked request may have advanced state (a
                        // feed-append failure after a successful apply).
                        view.store(engine.read_view());
                        resp
                    }
                };
                let _ = req.reply.send(resp);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if engine.is_replica() {
                    match engine.poll_feed() {
                        Ok(0) => {}
                        Ok(_) => view.store(engine.read_view()),
                        Err(e) => eprintln!("replica: feed poll failed: {e}"),
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    // Final catch-up so a drained replica returns fully caught up.
    if engine.is_replica() {
        let _ = engine.poll_feed();
    }
    engine
}

fn handle_connection(
    stream: AnyStream,
    tx: mpsc::Sender<WriteReq>,
    view: &SharedView,
    stop: &AtomicBool,
    counters: &Counters,
) {
    obs::net().connections_total.inc();
    obs::net().active_connections.add(1);
    // Decrement on every exit path, including the early returns below.
    struct ConnGuard;
    impl Drop for ConnGuard {
        fn drop(&mut self) {
            obs::net().active_connections.sub(1);
        }
    }
    let _guard = ConnGuard;
    if stream.set_read_timeout(TICK).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    while !stop.load(Ordering::Relaxed) {
        // `read_line` appends, so a timeout mid-line keeps the partial
        // prefix in `line`; it is only cleared after a complete line.
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let (resp, close) = answer(&line, &tx, view);
                line.clear();
                let Some(resp) = resp else { continue };
                counters.requests.fetch_add(1, Ordering::Relaxed);
                if matches!(resp, Response::Err(_)) {
                    counters.errors.fetch_add(1, Ordering::Relaxed);
                }
                if resp.write_to(&mut writer).is_err() || close {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => break,
        }
    }
}

/// Answer one request line: reads from the published view, writes via
/// the writer channel. `(None, _)` for blank/comment lines; the bool
/// asks the connection loop to close after replying.
fn answer(line: &str, tx: &mpsc::Sender<WriteReq>, view: &SharedView) -> (Option<Response>, bool) {
    let cmd = match parse_command(line) {
        Ok(None) => return (None, false),
        Ok(Some(cmd)) => cmd,
        Err(e) => {
            let m = obs::plane(view.load().stats.replica);
            m.requests_total.inc();
            m.record_err(e.code);
            return (Some(Response::Err(e)), false);
        }
    };
    match cmd {
        Command::Quit => (Some(Response::line("bye")), true),
        // Served straight from the registry, never recorded, so two
        // reads of an idle server return byte-identical frames.
        Command::Metrics => {
            (Some(Response::Ok(format_metrics(&jocl_obs::registry().snapshot()))), false)
        }
        // View-served reads record on the plane the view was published
        // by; writes are recorded by the engine on the writer thread.
        cmd @ (Command::Query(_) | Command::Link(_) | Command::Stats) => {
            let v = view.load();
            let m = obs::plane(v.stats.replica);
            m.record_request(&cmd);
            let sw = Stopwatch::start();
            let resp = match &cmd {
                Command::Query(phrase) => {
                    Response::Ok(format_query(phrase, &v.query_phrase(phrase)))
                }
                Command::Link(req) => Response::Ok(format_link(&v.link(req))),
                _ => Response::line(format_stats(&v.stats)),
            };
            m.record_response(&cmd, &resp, &sw);
            (Some(resp), false)
        }
        // Everything else — writes, snapshot/restore, shutdown — runs
        // on the single writer thread, in arrival order.
        cmd => {
            let (rtx, rrx) = mpsc::channel();
            let closing = || {
                Response::Err(WireError::new(
                    crate::protocol::ErrCode::Io,
                    "server is shutting down",
                ))
            };
            if tx.send(WriteReq { cmd, reply: rtx }).is_err() {
                return (Some(closing()), true);
            }
            (Some(rrx.recv().unwrap_or_else(|_| closing())), false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_specs_parse_and_display() {
        assert_eq!(
            ListenAddr::parse("tcp:127.0.0.1:0").unwrap(),
            ListenAddr::Tcp("127.0.0.1:0".into())
        );
        assert_eq!(
            ListenAddr::parse(" unix:/tmp/jocl.sock ").unwrap(),
            ListenAddr::Unix(PathBuf::from("/tmp/jocl.sock"))
        );
        assert_eq!(ListenAddr::parse("tcp:127.0.0.1:0").unwrap().to_string(), "tcp:127.0.0.1:0");
        for bad in ["", "tcp:", "tcp:nohostport", "unix:", "9090", "udp:1:2"] {
            assert!(ListenAddr::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
