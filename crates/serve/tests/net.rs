//! Integration tests for the networked serving plane (small scale;
//! the CI-scale `serve_net` gate lives in `jocl_bench`).
//!
//! * **Serve-loop hardening**: every malformed command — unparsable,
//!   unknown, dead `#ID` — is a typed `ERR` response that leaves the
//!   session consistent and the loop (stdin semantics and socket
//!   listener alike) alive.
//! * **Line protocol end-to-end**: a unix-socket server answers the
//!   full command vocabulary with framed responses, survives a
//!   garbage fuzz stream, and returns its engine on `shutdown`.
//! * **Concurrent reads**: readers served from the published view
//!   observe a committed (pre- or post-delta) decode, never a torn
//!   one, and complete while a write is in flight.
//! * **Replication**: a follower replaying the writer's log reaches
//!   bitwise-identical exported state, including after manual
//!   compaction and writer restore.

use jocl_core::signals::build_signals;
use jocl_core::{JoclConfig, Signals};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_kb::{Ckb, Okb, Triple};
use jocl_serve::{
    parse_command, Engine, EngineOptions, ErrCode, FeedRole, ListenAddr, ReadView, Response,
    ServeConfig, SharedView,
};
use std::io::{BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, OnceLock};
use std::time::{Duration, Instant};

struct World {
    ckb: Ckb,
    signals: Signals,
    pool: Vec<Triple>,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let dataset = reverb45k_like(11, 0.002);
        let pool: Vec<Triple> = {
            let mut union = Okb::new();
            for (_, t) in dataset.okb.triples() {
                union.ingest_triple(t.clone());
            }
            union.triples().map(|(_, t)| t.clone()).collect()
        };
        let mut union = Okb::new();
        for t in &pool {
            union.ingest_triple(t.clone());
        }
        let signals = build_signals(
            &union,
            &dataset.ckb,
            &dataset.ppdb,
            &dataset.corpus,
            &SgnsOptions { dim: 16, epochs: 2, seed: 11, ..Default::default() },
        );
        World { ckb: dataset.ckb, signals, pool }
    })
}

fn config() -> JoclConfig {
    let mut config = JoclConfig {
        train_epochs: 0,
        sgns: SgnsOptions { dim: 16, epochs: 2, ..Default::default() },
        ..Default::default()
    };
    config.lbp.max_iters = 60;
    config
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jocl-net-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open_engine(dir: &Path, feed: FeedRole) -> Engine<'static> {
    let w = world();
    Engine::open(
        config(),
        ServeConfig::default(),
        &w.ckb,
        &w.signals,
        w.pool.clone(),
        EngineOptions { snapshot_path: dir.join("session.snap"), feed },
    )
}

fn ok_lines(resp: Response) -> Vec<String> {
    match resp {
        Response::Ok(lines) => lines,
        Response::Err(e) => panic!("expected OK, got {e}"),
    }
}

fn run(engine: &mut Engine<'static>, line: &str) -> Response {
    engine.execute_caught(&parse_command(line).unwrap().unwrap())
}

/// Satellite: every command's malformed variants produce a typed `ERR`
/// that leaves the session consistent and the loop alive. (The pure
/// parse-layer variants are covered in `protocol::tests`; this covers
/// the state-dependent ones plus end-to-end recovery.)
#[test]
fn malformed_commands_leave_the_session_consistent() {
    let dir = temp_dir("malformed");
    let mut engine = open_engine(&dir, FeedRole::None);
    ok_lines(run(&mut engine, "ingest 10"));
    let stats_before = engine.session_stats();

    let expect_err = |engine: &mut Engine<'static>, line: &str, code: ErrCode| {
        let resp = match parse_command(line) {
            Err(e) => Response::Err(e),
            Ok(Some(cmd)) => engine.execute_caught(&cmd),
            Ok(None) => panic!("{line:?} parsed to nothing"),
        };
        match resp {
            Response::Err(e) => assert_eq!(e.code, code, "{line:?} -> {e}"),
            Response::Ok(lines) => panic!("{line:?} unexpectedly succeeded: {lines:?}"),
        }
    };

    // Parse-layer rejections (never reach the engine).
    expect_err(&mut engine, "ingest lots", ErrCode::Parse);
    expect_err(&mut engine, "add one | two", ErrCode::Parse);
    expect_err(&mut engine, "revise a | b | c", ErrCode::Parse);
    expect_err(&mut engine, "retract #x", ErrCode::Parse);
    expect_err(&mut engine, "frobnicate", ErrCode::Unknown);
    // State-layer rejections: dead and out-of-range ids.
    expect_err(&mut engine, "retract #9999", ErrCode::BadId);
    expect_err(&mut engine, "revise #9999 => a | b | c", ErrCode::BadId);
    ok_lines(run(&mut engine, "retract #3"));
    expect_err(&mut engine, "retract #3", ErrCode::BadId); // already dead
                                                           // Snapshot/restore failures are typed, not fatal.
    expect_err(&mut engine, "restore /nonexistent/no.snap", ErrCode::Io);

    // The session stayed consistent: only the one successful retract
    // changed state, and the loop keeps serving.
    let stats_after = engine.session_stats();
    assert_eq!(stats_after.triples, stats_before.triples);
    assert_eq!(stats_after.live, stats_before.live - 1);
    assert_eq!(stats_after.ops_applied, stats_before.ops_applied + 1);
    ok_lines(run(&mut engine, "add Acme Corp | be base in | Springfield"));
    assert_eq!(engine.session_stats().live, stats_after.live + 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: concurrent readers of the published view observe a
/// committed decode — one of the exact states the writer stored, never
/// a torn mixture.
#[test]
fn shared_view_swaps_are_never_torn() {
    let dir = temp_dir("tornview");
    let mut engine = open_engine(&dir, FeedRole::None);
    ok_lines(run(&mut engine, "ingest 12"));
    let view_a: ReadView = engine.read_view();
    let stats_a = view_a.stats;
    ok_lines(run(&mut engine, "retract #1"));
    ok_lines(run(&mut engine, "retract #2"));
    let view_b: ReadView = engine.read_view();
    let stats_b = view_b.stats;
    assert_ne!(stats_a.version, stats_b.version);
    assert_eq!(stats_b.live, stats_a.live - 2);

    let shared = SharedView::new(view_a.clone());
    let readers = 4;
    let laps = 400;
    let barrier = Barrier::new(readers + 1);
    let observed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..readers {
            s.spawn(|| {
                barrier.wait();
                for _ in 0..laps {
                    let v = shared.load();
                    // A view is all-A or all-B: its version and its
                    // live count must belong to the same capture.
                    let stats = v.stats;
                    if stats.version == stats_a.version {
                        assert_eq!(stats.live, stats_a.live, "torn view: A version, B state");
                    } else {
                        assert_eq!(stats.version, stats_b.version);
                        assert_eq!(stats.live, stats_b.live, "torn view: B version, A state");
                    }
                    // The decode payload is from the same capture too.
                    let lv = v.live_view().expect("captured after first delta");
                    assert_eq!(lv.triples.len(), stats.live);
                    observed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        barrier.wait();
        for i in 0..laps {
            shared.store(if i % 2 == 0 { view_b.clone() } else { view_a.clone() });
        }
    });
    assert_eq!(observed.load(Ordering::Relaxed), (readers * laps) as u64);
    std::fs::remove_dir_all(&dir).ok();
}

struct Client {
    reader: BufReader<UnixStream>,
    stream: UnixStream,
}

impl Client {
    fn connect(path: &Path) -> Self {
        // The server binds asynchronously; retry briefly.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match UnixStream::connect(path) {
                Ok(stream) => {
                    let reader = BufReader::new(stream.try_clone().unwrap());
                    return Self { reader, stream };
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                Err(e) => panic!("cannot connect to {}: {e}", path.display()),
            }
        }
    }

    fn request(&mut self, line: &str) -> Response {
        writeln!(self.stream, "{line}").unwrap();
        self.stream.flush().unwrap();
        Response::read_from(&mut self.reader).unwrap()
    }
}

/// The socket front-end end-to-end: full vocabulary, framed responses,
/// garbage fuzz, graceful shutdown returning the engine.
#[test]
fn unix_socket_server_serves_and_survives_fuzz() {
    let dir = temp_dir("socket");
    let engine = open_engine(&dir, FeedRole::Writer(dir.join("feed.log")));
    let addr = ListenAddr::Unix(dir.join("serve.sock"));
    let stop = AtomicBool::new(false);
    let sock = dir.join("serve.sock");

    std::thread::scope(|s| {
        let server = s.spawn(|| {
            jocl_serve::net::serve(engine, &addr, &stop, &mut |_| {}).expect("server runs")
        });

        let mut c = Client::connect(&sock);
        // Writes and reads through one connection.
        let lines = ok_lines(c.request("ingest 15"));
        assert_eq!(lines.len(), 2, "ingest answers a header + stats line: {lines:?}");
        assert!(lines[0].starts_with("ingest 15"), "{lines:?}");
        ok_lines(c.request("add Foo Inc | be locate in | Bar City"));
        let q = ok_lines(c.request("query foo inc"));
        assert!(q[0].starts_with("query.v1 matches=1"), "{q:?}");
        assert!(q.iter().any(|l| l.contains("Foo Inc")), "query finds the added triple: {q:?}");
        // The typed link API over the same connection: the added phrase
        // resolves to a canonical cluster URI with a confidence, and the
        // frame round-trips through the client-side parser.
        let l = ok_lines(c.request("link foo inc"));
        assert!(l[0].starts_with("link.v1 "), "{l:?}");
        let report = jocl_serve::parse_link(&l).expect("well-formed link.v1 frame");
        assert_eq!(report.target, "foo inc");
        assert!(!report.np.is_empty(), "the live mention yields an np candidate: {l:?}");
        assert!(report.np[0].uri.starts_with("jocl://np/"), "{:?}", report.np[0]);
        assert!(report.np[0].confidence > 0.0 && report.np[0].confidence <= 1.0);
        // An unknown URI is an *empty* OK report, not an error.
        let l = ok_lines(c.request("link ckb://entity/999999/nobody"));
        let empty = jocl_serve::parse_link(&l).expect("well-formed link.v1 frame");
        assert!(empty.is_empty(), "unknown targets answer empty, not ERR: {l:?}");
        // Escaped/quoted payloads are ordinary surface text on this line
        // protocol: a typed OK frame (empty alias hit here), never a
        // closed connection.
        let l = ok_lines(c.request("link \"weird \\\" payload\""));
        let report = jocl_serve::parse_link(&l).expect("well-formed link.v1 frame");
        assert_eq!(report.target, "\"weird \\\" payload\"");
        assert!(report.is_empty(), "{l:?}");
        let st = ok_lines(c.request("stats"));
        assert!(st[0].contains("triples=16"), "{st:?}");
        ok_lines(c.request("retract #15"));
        let q = ok_lines(c.request("query foo inc"));
        assert!(q[0].starts_with("query.v1 matches=0"), "retract is visible to reads: {q:?}");
        let l = ok_lines(c.request("link foo inc"));
        assert!(
            jocl_serve::parse_link(&l).unwrap().is_empty(),
            "retract is visible to link reads: {l:?}"
        );
        ok_lines(c.request("snapshot"));
        let restored = ok_lines(c.request("restore"));
        assert!(restored[0].contains("restored warm"), "{restored:?}");

        // Malformed-command fuzz: every line gets an ERR, nothing dies.
        let garbage = [
            "ingest",
            "ingest NaN",
            "add",
            "add a|b",
            "retract #",
            "retract #77777",
            "revise x => ",
            "query",
            "link",
            "link limit=3",
            "link x limit=0",
            "link x threshold=maybe",
            "link x threshold=1.5",
            "link jocl://banana/3",
            "link jocl://np/notanum",
            "link \"escaped \\\" payload\" limit=zero",
            "stats extra",
            "compact now",
            "%$#@!",
            "shutdown please",
            "\u{7f}\u{1b}[2J",
        ];
        for g in &garbage {
            match c.request(g) {
                Response::Err(_) => {}
                Response::Ok(lines) => panic!("{g:?} unexpectedly succeeded: {lines:?}"),
            }
        }
        // A second connection still works after the fuzz.
        let mut c2 = Client::connect(&sock);
        let st = ok_lines(c2.request("stats"));
        assert!(st[0].starts_with("stats.v1 triples="), "{st:?}");
        jocl_serve::parse_stats(&st[0]).expect("well-formed stats.v1 line");
        // The metrics exposition plane is served straight from the view
        // thread: a versioned frame, byte-identical across two reads of
        // an idle server (a metrics read records nothing).
        let m1 = ok_lines(c2.request("metrics"));
        assert!(m1[0].starts_with("metrics.v1 entries="), "{m1:?}");
        let m2 = ok_lines(c2.request("metrics"));
        assert_eq!(m1, m2, "idle metrics reads must be byte-identical");
        let parsed = jocl_serve::parse_metrics(&m1).expect("well-formed metrics.v1 frame");
        assert!(
            parsed.iter().any(|(k, v)| k == "jocl_net_connections_total" && *v >= 2),
            "{parsed:?}"
        );
        assert_eq!(ok_lines(c2.request("quit")), vec!["bye".to_string()]);

        ok_lines(c.request("shutdown"));
        let (engine, stats) = server.join().expect("server thread");
        assert!(stats.connections >= 2, "{stats:?}");
        assert_eq!(stats.errors, garbage.len() as u64, "{stats:?}");
        // The serve loop *returned* the engine (no process exit): the
        // restored session is intact and still usable in-process.
        assert_eq!(engine.session().session().len(), 16);
        assert!(!sock.exists(), "socket file cleaned up");
    });
    std::fs::remove_dir_all(&dir).ok();
}

/// Readers served from the published view complete while a write is in
/// flight, and only ever see committed versions.
#[test]
fn concurrent_readers_complete_during_a_write() {
    let dir = temp_dir("readers");
    let engine = open_engine(&dir, FeedRole::None);
    let addr = ListenAddr::Unix(dir.join("serve.sock"));
    let stop = AtomicBool::new(false);
    let sock = dir.join("serve.sock");

    let readers = 4;
    let barrier = Barrier::new(readers + 1);
    let write_done = std::sync::Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            jocl_serve::net::serve(engine, &addr, &stop, &mut |_| {}).expect("server runs")
        });
        let mut writer = Client::connect(&sock);
        ok_lines(writer.request("ingest 5"));

        let barrier = &barrier;
        let write_done = &write_done;
        s.spawn(move || {
            barrier.wait();
            // The slow write: the rest of the pool in one delta.
            ok_lines(writer.request("ingest 100000"));
            *write_done.lock().unwrap() = Some(Instant::now());
        });
        let mut handles = Vec::new();
        for _ in 0..readers {
            let sock = &sock;
            handles.push(s.spawn(move || {
                let mut c = Client::connect(sock);
                barrier.wait();
                let mut seen_versions = Vec::new();
                for _ in 0..20 {
                    let st = ok_lines(c.request("stats"));
                    let parsed =
                        jocl_serve::parse_stats(&st[0]).expect("stats line carries the version");
                    seen_versions.push(parsed.version);
                }
                (Instant::now(), seen_versions)
            }));
        }
        let results: Vec<(Instant, Vec<u64>)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Wait for the write to land, then check ordering.
        let done = loop {
            if let Some(t) = *write_done.lock().unwrap() {
                break t;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        for (finished, versions) in &results {
            assert!(
                *finished < done,
                "a reader was blocked behind the in-flight write \
                 (reader finished {:?} after the write)",
                finished.duration_since(done)
            );
            for v in versions {
                assert!(*v == 1 || *v == 2, "only committed versions are observable, got v{v}");
            }
        }
        let mut c = Client::connect(&sock);
        let st = ok_lines(c.request("stats"));
        assert!(st[0].contains("version=2"), "the write committed and published: {st:?}");
        ok_lines(c.request("shutdown"));
        server.join().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
}

/// A follower replaying the writer's log — warm-booted from a snapshot
/// mid-stream — reaches bitwise-identical exported state, through
/// interleaved add/retract/revise, manual compaction and writer restore.
#[test]
fn replica_reaches_bitwise_identical_state() {
    let dir = temp_dir("replica");
    let feed = dir.join("feed.log");
    let mut writer = open_engine(&dir, FeedRole::Writer(feed.clone()));

    ok_lines(run(&mut writer, "ingest 10"));
    ok_lines(run(&mut writer, "retract #4"));
    ok_lines(run(&mut writer, "snapshot"));

    // The replica warm-boots from the snapshot + cursor sidecar...
    let w = world();
    let mut replica = Engine::open_replica(
        config(),
        ServeConfig::default(),
        &w.ckb,
        &w.signals,
        w.pool.clone(),
        EngineOptions { snapshot_path: dir.join("session.snap"), feed: FeedRole::Follower(feed) },
    )
    .expect("replica warm-boot");
    assert_eq!(replica.session().session().len(), 10, "restored the snapshot state");
    assert!(replica.feed_offset() > 0, "cursor sidecar pinned the log offset");

    // ...while the writer keeps going: interleaved ops, a manual
    // compact (logged), a batch with revisions.
    ok_lines(run(&mut writer, "ingest 6"));
    ok_lines(run(&mut writer, "revise #7 => Foo Inc | be locate in | Bar City"));
    ok_lines(run(&mut writer, "retract #2"));
    ok_lines(run(&mut writer, "compact"));
    ok_lines(run(&mut writer, "add Acme Corp | be base in | Springfield"));

    // Writes on the replica plane are refused with a typed error.
    match run(&mut replica, "add X | y | Z") {
        Response::Err(e) => assert_eq!(e.code, ErrCode::ReadOnly),
        Response::Ok(l) => panic!("replica accepted a write: {l:?}"),
    }

    let applied = replica.poll_feed().expect("catch up");
    assert!(applied >= 5, "replayed the writer's batches, got {applied}");
    assert_eq!(replica.poll_feed().expect("idempotent"), 0, "already caught up");

    assert_eq!(
        replica.session().session().len(),
        writer.session().session().len(),
        "same store length"
    );
    let writer_bytes = jocl_serve::snapshot::session_to_bytes(writer.session_mut().session_mut());
    let replica_bytes = jocl_serve::snapshot::session_to_bytes(replica.session_mut().session_mut());
    assert_eq!(writer_bytes, replica_bytes, "replica state is bitwise-identical to the writer");

    // Writer restore truncates the log to the snapshot's offset, so the
    // replica never replays retired operations; post-restore writes
    // flow again. (The replica itself would re-boot in practice; here
    // we just verify the log contract.)
    let before_restore = writer.feed_offset();
    ok_lines(run(&mut writer, "restore"));
    let after_restore = writer.feed_offset();
    assert!(after_restore < before_restore, "restore rewound the log");
    ok_lines(run(&mut writer, "add Post Restore | flow | Again"));
    assert!(writer.feed_offset() > after_restore, "the log grows again after restore");
    std::fs::remove_dir_all(&dir).ok();
}
