//! Acceptance tests for the durable serving subsystem.
//!
//! * **Retraction parity (proptest)**: after any interleaving of
//!   add/retract/revise deltas — across thread counts and both schedule
//!   modes — the live view decodes identically to a from-scratch batch
//!   run on the surviving triples. Run with caps that do not bind (see
//!   the `jocl_core::incremental` module docs for the cap caveat).
//! * **Kill-and-restart parity (proptest)**: `snapshot → drop session →
//!   restore → apply_delta` is bitwise-identical (full exported state,
//!   messages included) to the uninterrupted session.
//! * **Snapshot failure modes**: missing/truncated/corrupted files and
//!   config mismatches surface as typed `KbError`s naming the file.
//! * **Compaction policy**: the density threshold triggers a cold
//!   rebuild with an unchanged live decode.

use jocl_core::example::figure1;
use jocl_core::signals::build_signals;
use jocl_core::{DeltaOp, Jocl, JoclConfig, JoclInput, ScheduleMode, Signals};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_kb::{Ckb, EntityId, KbError, Okb, RelationId, SideKb, Triple};
use jocl_serve::{parse_link_target, snapshot, LinkRequest, ReadView, ServeConfig, ServeSession};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::OnceLock;

fn parity_config(mode: ScheduleMode, threads: usize) -> JoclConfig {
    let mut config = JoclConfig {
        train_epochs: 0,
        sgns: SgnsOptions { dim: 16, epochs: 2, ..Default::default() },
        // Blocking caps consumed at arrival time are the one documented
        // source of retraction-parity divergence; lift them so parity is
        // exact for arbitrary interleavings.
        max_group_clique: usize::MAX / 2,
        cross_cap: usize::MAX / 2,
        ..Default::default()
    };
    config.lbp.mode = mode;
    config.lbp.threads = threads;
    config
}

struct World {
    ckb: Ckb,
    signals: Signals,
    pool: Vec<Triple>,
}

/// Two small worlds; signals are built over the pool *union* once and
/// frozen (they are a shared serving resource — the reference batch run
/// uses the same ones).
fn worlds() -> &'static Vec<World> {
    static WORLDS: OnceLock<Vec<World>> = OnceLock::new();
    WORLDS.get_or_init(|| {
        [7u64, 23]
            .into_iter()
            .map(|seed| {
                let dataset = reverb45k_like(seed, 0.002);
                let pool: Vec<Triple> = {
                    let mut union = Okb::new();
                    for (_, t) in dataset.okb.triples() {
                        union.ingest_triple(t.clone());
                    }
                    union.triples().map(|(_, t)| t.clone()).collect()
                };
                let mut union = Okb::new();
                for t in &pool {
                    union.ingest_triple(t.clone());
                }
                let signals = build_signals(
                    &union,
                    &dataset.ckb,
                    &dataset.ppdb,
                    &dataset.corpus,
                    &SgnsOptions { dim: 16, epochs: 2, seed, ..Default::default() },
                );
                World { ckb: dataset.ckb, signals, pool }
            })
            .collect()
    })
}

/// Batch-run the surviving triples with the world's frozen signals.
fn batch_on(world: &World, survivors: &[Triple], config: &JoclConfig) -> jocl_core::JoclOutput {
    let mut okb = Okb::new();
    for t in survivors {
        okb.ingest_triple(t.clone());
    }
    let empty_ppdb = jocl_rules::ParaphraseStore::new();
    let corpus: Vec<Vec<String>> = Vec::new();
    let input = JoclInput { okb: &okb, ckb: &world.ckb, ppdb: &empty_ppdb, corpus: &corpus };
    Jocl::new(config.clone()).run_with_signals(input, &world.signals, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaving of add/retract/revise ops, chopped into random
    /// deltas, any thread count, both schedule modes: the live view
    /// equals the from-scratch batch decode on the survivors.
    #[test]
    fn interleaved_ops_decode_like_batch_on_survivors(
        world_idx in 0usize..2,
        ops_raw in proptest::collection::vec((0usize..4, 0usize..997, 0usize..997), 1..28),
        delta_len in 1usize..6,
        threads in 1usize..3,
        residual_mode in 0usize..2,
    ) {
        let world = &worlds()[world_idx];
        let n = world.pool.len();
        prop_assume!(n > 4);
        let mode = if residual_mode == 1 { ScheduleMode::Residual } else { ScheduleMode::Synchronous };
        let config = parity_config(mode, threads);

        // Materialize ops against the pool and mirror the live set in a
        // trivial model.
        let mut model: HashSet<Triple> = HashSet::new();
        let ops: Vec<DeltaOp> = ops_raw
            .iter()
            .map(|&(kind, i, j)| {
                let a = world.pool[i % n].clone();
                let b = world.pool[j % n].clone();
                match kind {
                    0 | 1 => {
                        model.insert(a.clone());
                        DeltaOp::Add(a)
                    }
                    2 => {
                        model.remove(&a);
                        DeltaOp::Retract(a)
                    }
                    _ => {
                        model.remove(&a);
                        model.insert(b.clone());
                        DeltaOp::Revise { old: a, new: b }
                    }
                }
            })
            .collect();

        let mut session = ServeSession::open(
            config.clone(),
            ServeConfig::builder().compact_threshold(f64::INFINITY).build(),
            &world.ckb,
            &world.signals,
        );
        for delta in ops.chunks(delta_len) {
            let out = session.apply(delta);
            prop_assert!(out.output.diagnostics.lbp.converged, "every delta must converge");
        }

        // Membership: the session's survivors are exactly the model's.
        let survivors = session.session().live_triples();
        let got: HashSet<Triple> = survivors.iter().cloned().collect();
        prop_assert_eq!(&got, &model, "live set diverged from the reference model");

        // Decode parity on the live view.
        let batch = batch_on(world, &survivors, &config);
        let view = session.live_view().expect("session saw at least one delta");
        prop_assert_eq!(view.triples.len(), survivors.len());
        prop_assert_eq!(&view.np_links, &batch.np_links, "np links diverged");
        prop_assert_eq!(&view.rp_links, &batch.rp_links, "rp links diverged");
        prop_assert_eq!(
            view.np_clustering.assignment(),
            batch.np_clustering.assignment(),
            "np clustering diverged"
        );
        prop_assert_eq!(
            view.rp_clustering.assignment(),
            batch.rp_clustering.assignment(),
            "rp clustering diverged"
        );
    }

    /// Kill-and-restart: snapshot, drop the session, restore, apply one
    /// more delta — the full exported state (messages, marginals,
    /// everything) is bitwise-identical to the uninterrupted session's,
    /// across thread counts and both schedule modes.
    #[test]
    fn snapshot_restore_resumes_bitwise_identically(
        world_idx in 0usize..2,
        split in 1usize..200,
        retract in 0usize..997,
        threads in 1usize..3,
        residual_mode in 0usize..2,
    ) {
        let world = &worlds()[world_idx];
        let n = world.pool.len();
        prop_assume!(n > 6);
        let mode = if residual_mode == 1 { ScheduleMode::Residual } else { ScheduleMode::Synchronous };
        let config = parity_config(mode, threads);
        let split = 1 + split % (n - 2);
        let serve = ServeConfig::builder().compact_threshold(f64::INFINITY).build();

        // Warm a session on a prefix and retract one triple of it.
        let mut uninterrupted =
            ServeSession::open(config.clone(), serve.clone(), &world.ckb, &world.signals);
        uninterrupted.add_all(&world.pool[..split]);
        uninterrupted
            .apply(&[DeltaOp::Retract(world.pool[retract % split].clone())]);

        // Snapshot (in-memory envelope; file round-trip is covered by the
        // unit tests below), then kill.
        let bytes = {
            let mut session = uninterrupted;
            let bytes = snapshot::session_to_bytes(session.session_mut());
            drop(session);
            bytes
        };
        let mut restored_inner =
            snapshot::session_from_bytes(&bytes, config.clone(), &world.ckb, &world.signals)
                .expect("restore");

        // Re-create the uninterrupted session by replaying the same
        // history (deterministic), then drive both with the same tail.
        let mut replay = ServeSession::open(config, serve, &world.ckb, &world.signals);
        replay.add_all(&world.pool[..split]);
        replay.apply(&[DeltaOp::Retract(world.pool[retract % split].clone())]);

        prop_assert_eq!(
            replay.session_mut().export_state(),
            restored_inner.export_state(),
            "restored state must re-export bitwise identically"
        );

        let tail: Vec<Triple> = world.pool[split..].iter().take(8).cloned().collect();
        let a = replay.add_all(&tail);
        let b = restored_inner.apply_delta(&tail);
        prop_assert_eq!(a.stats.lbp.message_updates, b.stats.lbp.message_updates);
        prop_assert_eq!(&a.output.np_links, &b.output.np_links);
        prop_assert_eq!(&a.output.rp_links, &b.output.rp_links);
        prop_assert_eq!(
            a.output.np_clustering.assignment(),
            b.output.np_clustering.assignment()
        );
        prop_assert_eq!(
            replay.session_mut().export_state(),
            restored_inner.export_state(),
            "post-tail states must be bitwise identical"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Side-information parity: with an imported alias table active the
    /// decode is **thread-invariant** and the warm incremental path
    /// matches a from-scratch batch run, across both schedule modes.
    /// And `Some(empty table)` exports **bitwise-identical** state to
    /// `None` — adding the subsystem changed nothing for sessions that
    /// do not use it.
    #[test]
    fn side_info_decode_is_thread_invariant_and_matches_batch(
        world_idx in 0usize..2,
        rows in proptest::collection::vec((0usize..997, 0usize..997, 1u32..=10), 1..6),
        prefix in 4usize..40,
        threads in 1usize..3,
        residual_mode in 0usize..2,
    ) {
        let world = &worlds()[world_idx];
        let n = world.pool.len();
        prop_assume!(n > 4);
        let mode = if residual_mode == 1 { ScheduleMode::Residual } else { ScheduleMode::Synchronous };

        // A deterministic alias table over the world's own surface forms
        // and curated names, so the imported rows actually bind factors.
        let mut side = SideKb::new();
        for &(i, j, w) in &rows {
            let t = &world.pool[i % n];
            let e = EntityId((j % world.ckb.num_entities()) as u32);
            side.add_entity_link(&t.subject, &world.ckb.entity(e).name, f64::from(w) / 10.0);
            let r = RelationId((j % world.ckb.num_relations()) as u32);
            side.add_relation_link(&t.predicate, &world.ckb.relation(r).name, f64::from(w) / 10.0);
        }
        let side = std::sync::Arc::new(side);
        let prefix = prefix.min(n);
        let survivors: Vec<Triple> = world.pool[..prefix].to_vec();

        let mut config = parity_config(mode, threads);
        config.side_info = Some(side.clone());
        let batch = batch_on(world, &survivors, &config);

        // Thread invariance of the batch decode under side info.
        let mut config1 = parity_config(mode, 1);
        config1.side_info = Some(side);
        let single = batch_on(world, &survivors, &config1);
        prop_assert_eq!(&batch.np_links, &single.np_links, "np links thread-variant");
        prop_assert_eq!(&batch.rp_links, &single.rp_links, "rp links thread-variant");
        prop_assert_eq!(batch.np_clustering.assignment(), single.np_clustering.assignment());
        prop_assert_eq!(batch.rp_clustering.assignment(), single.rp_clustering.assignment());

        // Incremental (chunked arrival) with side info decodes like batch.
        let mut session =
            ServeSession::open(config, ServeConfig::default(), &world.ckb, &world.signals);
        let split = prefix / 2;
        session.add_all(&survivors[..split]);
        session.add_all(&survivors[split..]);
        let view = session.live_view().expect("session decoded");
        prop_assert_eq!(&view.np_links, &batch.np_links, "np links diverged from batch");
        prop_assert_eq!(&view.rp_links, &batch.rp_links, "rp links diverged from batch");
        prop_assert_eq!(view.np_clustering.assignment(), batch.np_clustering.assignment());
        prop_assert_eq!(view.rp_clustering.assignment(), batch.rp_clustering.assignment());

        // The no-silent-behavior-change contract, at full strength:
        // `Some(empty)` and `None` export bitwise-identical sessions.
        let empty_cfg = {
            let mut c = parity_config(mode, threads);
            c.side_info = Some(std::sync::Arc::new(SideKb::new()));
            c
        };
        let mut a = ServeSession::open(
            parity_config(mode, threads), ServeConfig::default(), &world.ckb, &world.signals);
        let mut b =
            ServeSession::open(empty_cfg, ServeConfig::default(), &world.ckb, &world.signals);
        a.add_all(&survivors[..split]);
        a.add_all(&survivors[split..]);
        b.add_all(&survivors[..split]);
        b.add_all(&survivors[split..]);
        prop_assert_eq!(
            a.session_mut().export_state(),
            b.session_mut().export_state(),
            "an empty side table must be byte-for-byte inert"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Observability parity (PR-10): metric recording is purely
    /// observational — the same ingest produces a bitwise-identical
    /// exported session with recording off and on, across both schedule
    /// modes and thread counts. (The toggle is the process-global
    /// `JOCL_METRICS` switch the bins set; decode code never reads it,
    /// which is exactly what this pins down.)
    #[test]
    fn decode_is_bitwise_identical_with_metrics_off_and_on(
        world_idx in 0usize..2,
        prefix in 4usize..120,
        split_frac in 1usize..4,
        threads in 1usize..3,
        residual_mode in 0usize..2,
    ) {
        let world = &worlds()[world_idx];
        let n = world.pool.len();
        prop_assume!(n > 6);
        let mode = if residual_mode == 1 { ScheduleMode::Residual } else { ScheduleMode::Synchronous };
        let config = parity_config(mode, threads);
        let serve = ServeConfig::builder().compact_threshold(f64::INFINITY).build();
        let prefix = (1 + prefix % (n - 1)).max(2);
        let split = (prefix * split_frac / 4).clamp(1, prefix - 1);

        let run = |enabled: bool| {
            jocl_obs::set_metrics_enabled(enabled);
            let mut s =
                ServeSession::open(config.clone(), serve.clone(), &world.ckb, &world.signals);
            s.add_all(&world.pool[..split]);
            s.add_all(&world.pool[split..prefix]);
            let state = s.session_mut().export_state();
            jocl_obs::set_metrics_enabled(true);
            state
        };
        prop_assert_eq!(
            run(false),
            run(true),
            "metric recording must never reach the decode (mode {:?})",
            mode
        );
    }
}

/// File-level round trip plus the `KbError::WithPath` failure modes —
/// every restore failure must name the offending file (the satellite
/// extension of PR 4's `load_params` fix).
#[test]
fn snapshot_file_errors_name_the_file() {
    let ex = figure1();
    let signals = build_signals(&ex.okb, &ex.ckb, &ex.ppdb, &ex.corpus, &ex.config().sgns);
    let config = ex.config();
    let dir = std::env::temp_dir().join(format!("jocl-serve-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("session.snap");

    let triples: Vec<Triple> = ex.okb.triples().map(|(_, t)| t.clone()).collect();
    let mut session = ServeSession::open(config.clone(), ServeConfig::default(), &ex.ckb, &signals);
    session.add_all(&triples);
    session.apply(&[DeltaOp::Retract(triples[0].clone())]);
    let size = session.snapshot_to(&path).unwrap();
    assert!(size > 0);
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "atomic write leaves no temp files: {leftovers:?}");

    // Happy path: restore and compare the live views.
    let restored = ServeSession::restore_from(
        &path,
        config.clone(),
        ServeConfig::default(),
        &ex.ckb,
        &signals,
    )
    .unwrap();
    let (a, b) = (session.live_view().unwrap(), restored.live_view().unwrap());
    assert_eq!(a.np_links, b.np_links);
    assert_eq!(a.np_clustering.assignment(), b.np_clustering.assignment());

    let assert_named = |err: KbError, what: &str| {
        let msg = err.to_string();
        assert!(
            msg.contains("session.snap") || msg.contains("missing.snap"),
            "{what}: error must name the file: {msg}"
        );
        msg
    };

    // Missing file.
    let err = ServeSession::restore_from(
        &dir.join("missing.snap"),
        config.clone(),
        ServeConfig::default(),
        &ex.ckb,
        &signals,
    )
    .unwrap_err();
    assert!(
        matches!(err, KbError::WithPath { ref source, .. } if matches!(**source, KbError::Io(_)))
    );
    assert_named(err, "missing file");

    // Truncated file (torn write): checksum/framing must catch it.
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();
    let err = snapshot::load_session(&path, config.clone(), &ex.ckb, &signals).unwrap_err();
    assert_named(err, "truncated file");

    // Single corrupted payload byte: checksum mismatch.
    let mut corrupt = full.clone();
    let mid = corrupt.len() - 100;
    corrupt[mid] ^= 0x40;
    std::fs::write(&path, &corrupt).unwrap();
    let msg = assert_named(
        snapshot::load_session(&path, config.clone(), &ex.ckb, &signals).unwrap_err(),
        "corrupt payload",
    );
    assert!(msg.contains("checksum"), "corruption should die at the checksum: {msg}");

    // Bad magic: not a snapshot at all.
    std::fs::write(&path, b"definitely not a snapshot").unwrap();
    let msg = assert_named(
        snapshot::load_session(&path, config.clone(), &ex.ckb, &signals).unwrap_err(),
        "bad magic",
    );
    assert!(msg.contains("magic"), "{msg}");

    // Config mismatch: the fingerprint names the divergent knob.
    std::fs::write(&path, &full).unwrap();
    let mut other = config.clone();
    other.blocking_threshold += 0.125;
    let msg = assert_named(
        snapshot::load_session(&path, other, &ex.ckb, &signals).unwrap_err(),
        "config mismatch",
    );
    assert!(msg.contains("blocking_threshold"), "{msg}");

    // Different serving weights are a config mismatch too: a later
    // compaction would rebuild from `config.pretrained_params`, so a
    // weight swap must fail at restore, not silently diverge then.
    let mut other = config.clone();
    other.pretrained_params = Some(jocl_fg::Params::from_groups(vec![vec![1.0]]));
    let msg = assert_named(
        snapshot::load_session(&path, other, &ex.ckb, &signals).unwrap_err(),
        "weights mismatch",
    );
    assert!(msg.contains("pretrained_params"), "{msg}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Restoring a snapshot taken after an **unconverged** delta must not
/// run inference: the restored state stays bitwise-identical to the
/// snapshot (the next real delta re-primes everything), and the cached
/// decode reports the persisted convergence state honestly.
#[test]
fn restore_of_unconverged_snapshot_runs_no_inference() {
    let ex = figure1();
    let signals = build_signals(&ex.okb, &ex.ckb, &ex.ppdb, &ex.corpus, &ex.config().sgns);
    let triples: Vec<Triple> = ex.okb.triples().map(|(_, t)| t.clone()).collect();
    let mut config = ex.config();
    config.lbp.max_iters = 1; // force a non-converged delta
    let dir = std::env::temp_dir().join(format!("jocl-serve-uncvg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("session.snap");

    let mut session = ServeSession::open(config.clone(), ServeConfig::default(), &ex.ckb, &signals);
    let out = session.add_all(&triples);
    assert!(!out.output.diagnostics.lbp.converged, "fixture must not converge in 1 iteration");
    let before = session.session_mut().export_state();
    session.snapshot_to(&path).unwrap();

    let mut restored =
        ServeSession::restore_from(&path, config, ServeConfig::default(), &ex.ckb, &signals)
            .unwrap();
    let last = restored.last_output().expect("restored decode available");
    assert_eq!(last.diagnostics.lbp.message_updates, 0, "restore must not run inference");
    assert!(!last.diagnostics.lbp.converged, "persisted convergence state is reported");
    assert_eq!(
        restored.session_mut().export_state(),
        before,
        "restore must leave the snapshot state bitwise untouched"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The automatic compaction policy: crossing the density threshold
/// rebuilds cold, reports it on the triggering delta, and leaves the
/// live decode unchanged.
#[test]
fn auto_compaction_triggers_and_preserves_live_decode() {
    let ex = figure1();
    let signals = build_signals(&ex.okb, &ex.ckb, &ex.ppdb, &ex.corpus, &ex.config().sgns);
    let triples: Vec<Triple> = ex.okb.triples().map(|(_, t)| t.clone()).collect();
    // Threshold 0: any tombstone triggers compaction.
    let mut session = ServeSession::open(
        ex.config(),
        ServeConfig::builder().compact_threshold(0.0).build(),
        &ex.ckb,
        &signals,
    );
    session.add_all(&triples);
    let view_before: Vec<_> = {
        let v = session.live_view().unwrap();
        v.np_links.clone()
    };
    assert_eq!(session.compactions, 0);

    let out = session.apply(&[DeltaOp::Retract(triples[1].clone())]);
    assert!(out.stats.compacted, "threshold 0 must compact on the first tombstone");
    assert_eq!(session.compactions, 1);
    assert_eq!(session.session().tombstone_density(), 0.0);
    assert_eq!(session.session().len(), 2, "compaction renumbered to the survivors");

    let view = session.live_view().unwrap();
    assert_eq!(view.triples.len(), 2);
    // Survivors keep their links: triple 0 and 2 were slots 0,1 and 4,5.
    assert_eq!(view.np_links[0], view_before[0]);
    assert_eq!(view.np_links[1], view_before[1]);
    assert_eq!(view.np_links[2], view_before[4]);
    assert_eq!(view.np_links[3], view_before[5]);
}

/// `query_phrase` resolves live mentions to their clusters and links,
/// and retracted mentions drop out of the answers.
#[test]
fn query_phrase_reports_clusters_and_respects_retraction() {
    let ex = figure1();
    let signals = build_signals(&ex.okb, &ex.ckb, &ex.ppdb, &ex.corpus, &ex.config().sgns);
    let triples: Vec<Triple> = ex.okb.triples().map(|(_, t)| t.clone()).collect();
    let mut session = ServeSession::open(ex.config(), ServeConfig::default(), &ex.ckb, &signals);
    assert!(session.query_phrase("UMD").is_empty(), "no state before the first delta");
    session.add_all(&triples);

    // "UMD" (subject of triple 1) clusters with "University of Maryland"
    // and links to the UMD entity in the figure's joint decode.
    let reports = session.query_phrase("umd");
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.role, "subject");
    assert_eq!(r.entity, Some(ex.e_umd));
    assert!(r.cluster_size >= 2, "UMD must merge with University of Maryland");
    assert!(
        r.cluster_phrases.iter().any(|p| p == "University of Maryland"),
        "{:?}",
        r.cluster_phrases
    );

    // Retract triple 1: the mention disappears from query results and
    // from other mentions' clusters.
    session.apply(&[DeltaOp::Retract(triples[1].clone())]);
    assert!(session.query_phrase("umd").is_empty(), "retracted mentions must not answer");
    let reports = session.query_phrase("University of Maryland");
    assert_eq!(reports.len(), 1);
    assert!(
        reports[0].cluster_phrases.iter().all(|p| p != "UMD"),
        "dead phrases must leave live clusters: {:?}",
        reports[0].cluster_phrases
    );
}

/// The tentpole acceptance on the Figure 1 fixture: `link` resolves
/// surface forms to canonical cluster URIs and calibrated CKB
/// candidates; the live-session plane and the captured [`ReadView`]
/// plane answer **identically**; side-information dictionary rows
/// surface as candidates even without a live mention; unknown URIs
/// answer empty rather than erroring; and thresholds filter.
#[test]
fn link_resolves_surfaces_identically_on_both_planes() {
    let ex = figure1();
    let signals = build_signals(&ex.okb, &ex.ckb, &ex.ppdb, &ex.corpus, &ex.config().sgns);
    let triples: Vec<Triple> = ex.okb.triples().map(|(_, t)| t.clone()).collect();
    let mut config = ex.config();
    let mut side = SideKb::new();
    // A dictionary row for a surface that never occurs in the OKB, and a
    // paraphrase row for one that does.
    side.add_entity_link("the terrapins", "university of maryland", 0.7);
    side.add_relation_link("be an early member of", "organizations_founded", 0.8);
    config.side_info = Some(std::sync::Arc::new(side));
    let mut session = ServeSession::open(config, ServeConfig::default(), &ex.ckb, &signals);
    assert!(
        session.link(&LinkRequest::surface("umd")).is_empty(),
        "no candidates before the first delta"
    );
    session.add_all(&triples);

    // A live surface form: the cluster URI candidate covers the
    // {UMD, University of Maryland} group, and the link votes put the
    // CKB entity candidate at full confidence.
    let report = session.link(&LinkRequest::surface("UMD"));
    assert_eq!(report.target, "UMD");
    assert!(report.rp.is_empty(), "an NP surface yields no relation candidates: {report:?}");
    let cluster = report
        .np
        .iter()
        .find(|c| c.uri.starts_with("jocl://np/"))
        .expect("a canonical cluster URI candidate");
    assert!(cluster.cluster_size >= 2, "UMD must cluster with University of Maryland");
    assert!(cluster.confidence > 0.0 && cluster.confidence <= 1.0);
    let entity = report
        .np
        .iter()
        .find(|c| c.uri.starts_with(&format!("ckb://entity/{}/", ex.e_umd.idx())))
        .expect("the e_umd link candidate");
    assert_eq!(entity.confidence, 1.0, "both mentions vote e_umd: {entity:?}");
    assert!(entity.support >= 1);

    // Dictionary-only surface: no live mention, but the imported alias
    // row yields the CKB candidate at the import's weight.
    let dict = session.link(&LinkRequest::surface("The Terrapins"));
    assert_eq!(dict.np.len(), 1, "{dict:?}");
    assert!(dict.np[0].uri.starts_with(&format!("ckb://entity/{}/", ex.e_umd.idx())));
    assert_eq!(dict.np[0].confidence, 0.7);
    assert_eq!(dict.np[0].support, 0, "no live mention backs a dictionary row");

    // RP surface: clusters with its paraphrase and links to r_member.
    let rp = session.link(&LinkRequest::surface("be an early member of"));
    assert!(rp.np.is_empty(), "{rp:?}");
    assert!(
        rp.rp.iter().any(|c| c.uri.starts_with(&format!("ckb://relation/{}/", ex.r_member.idx()))),
        "{rp:?}"
    );

    // Round-trip through the URI grammar: asking about the cluster URI
    // itself answers with the cluster at confidence 1 plus its links.
    let req = LinkRequest {
        target: parse_link_target(&cluster.uri).expect("self-produced URIs parse"),
        limit: None,
        threshold: None,
    };
    let by_uri = session.link(&req);
    let selfc =
        by_uri.np.iter().find(|c| c.uri == cluster.uri).expect("the cluster answers for itself");
    assert_eq!(selfc.confidence, 1.0, "{by_uri:?}");
    assert!(by_uri.np.iter().any(|c| c.uri == entity.uri), "member links ride along: {by_uri:?}");

    // Unknown ids answer empty — a miss is not an error.
    let missing = LinkRequest {
        target: parse_link_target("ckb://entity/999999/nobody").unwrap(),
        limit: None,
        threshold: None,
    };
    assert!(session.link(&missing).is_empty());

    // A request-level threshold filters candidates below it.
    let strict = LinkRequest {
        target: jocl_serve::LinkTarget::Surface("the terrapins".into()),
        limit: None,
        threshold: Some(0.9),
    };
    assert!(session.link(&strict).is_empty(), "0.7 dictionary row filtered at 0.9");

    // Plane parity: the captured ReadView answers every request
    // identically to the live session.
    let view = ReadView::capture(&session, 1, false);
    for target in
        ["UMD", "The Terrapins", "be an early member of", "locate in", "U21", "never seen"]
    {
        let req = LinkRequest::surface(target);
        assert_eq!(view.link(&req), session.link(&req), "plane divergence on {target:?}");
    }
    assert_eq!(view.link(&req), session.link(&req));
    assert_eq!(view.link(&missing), session.link(&missing));

    // Retraction is visible to link reads on a fresh capture.
    session.apply(&[DeltaOp::Retract(triples[1].clone())]);
    let after = session.link(&LinkRequest::surface("umd"));
    assert!(after.is_empty(), "retracted mentions must not vote: {after:?}");
    let view = ReadView::capture(&session, 2, false);
    assert_eq!(view.link(&LinkRequest::surface("umd")), after);
}
