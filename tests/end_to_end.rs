//! Workspace-spanning integration tests: datagen → signals → JOCL →
//! evaluation, plus the paper's headline claims at test scale.

use jocl::baselines;
use jocl::core::signals::build_signals;
use jocl::core::{FeatureSet, Jocl, JoclConfig, JoclInput, Variant};
use jocl::datagen::{nytimes2018_like, reverb45k_like, Dataset};
use jocl::embed::SgnsOptions;
use jocl::eval::clustering::evaluate_clustering;
use jocl::eval::linking_accuracy;

fn small_dataset() -> Dataset {
    reverb45k_like(21, 0.004)
}

fn input(d: &Dataset) -> JoclInput<'_> {
    JoclInput { okb: &d.okb, ckb: &d.ckb, ppdb: &d.ppdb, corpus: &d.corpus }
}

fn fast_config() -> JoclConfig {
    JoclConfig {
        train_epochs: 0,
        sgns: SgnsOptions { dim: 16, epochs: 2, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn jocl_beats_morph_norm_on_synthetic_reverb() {
    let d = small_dataset();
    let out = Jocl::new(fast_config()).run(input(&d), None);
    let gold = d.gold.np_clustering();
    let jocl_f1 = evaluate_clustering(&out.np_clustering, &gold).average_f1();
    let morph_f1 = evaluate_clustering(&baselines::morph_norm(&d.okb), &gold).average_f1();
    assert!(
        jocl_f1 > morph_f1,
        "JOCL ({jocl_f1:.3}) must beat Morph Norm ({morph_f1:.3})"
    );
}

#[test]
fn joint_beats_cano_only_on_np_task() {
    let d = small_dataset();
    let signals = build_signals(&d.okb, &d.ckb, &d.ppdb, &d.corpus, &fast_config().sgns);
    let gold = d.gold.np_clustering();
    let full = Jocl::new(fast_config()).run_with_signals(input(&d), &signals, None);
    let cano = Jocl::new(JoclConfig { variant: Variant::CanoOnly, ..fast_config() })
        .run_with_signals(input(&d), &signals, None);
    let f_full = evaluate_clustering(&full.np_clustering, &gold).average_f1();
    let f_cano = evaluate_clustering(&cano.np_clustering, &gold).average_f1();
    assert!(
        f_full > f_cano,
        "interaction must help canonicalization: full {f_full:.3} vs cano {f_cano:.3}"
    );
}

#[test]
fn linking_accuracy_is_reasonable() {
    let d = small_dataset();
    let out = Jocl::new(fast_config()).run(input(&d), None);
    let score = linking_accuracy(&out.np_links, &d.gold.np_entity);
    assert!(
        score.accuracy() > 0.6,
        "entity linking accuracy too low: {}",
        score.accuracy()
    );
}

#[test]
fn training_improves_or_preserves_quality() {
    let d = small_dataset();
    let signals = build_signals(&d.okb, &d.ckb, &d.ppdb, &d.corpus, &fast_config().sgns);
    let (validation, _) = d.entity_split(0.2, 9);
    let labels = {
        // Rebuild the bench helper inline to avoid a dev-dependency cycle.
        use jocl::core::pipeline::ValidationLabels;
        use jocl::kb::{NpMention, NpSlot, RpMention};
        let mut l = ValidationLabels::empty(&d.okb);
        for &t in &validation {
            for slot in [NpSlot::Subject, NpSlot::Object] {
                let m = NpMention { triple: t, slot }.dense();
                l.np_entity[m] = d.gold.np_entity[m];
                l.np_cluster[m] = Some(d.gold.np_cluster_labels[m]);
            }
            let m = RpMention(t).dense();
            l.rp_relation[m] = d.gold.rp_relation[m];
            l.rp_cluster[m] = Some(d.gold.rp_cluster_labels[m]);
        }
        l
    };
    let untrained = Jocl::new(fast_config()).run_with_signals(input(&d), &signals, None);
    let trained = Jocl::new(JoclConfig { train_epochs: 3, ..fast_config() })
        .run_with_signals(input(&d), &signals, Some(&labels));
    assert!(trained.diagnostics.train_epochs > 0, "training must actually run");
    let gold = d.gold.np_clustering();
    let f_untrained = evaluate_clustering(&untrained.np_clustering, &gold).average_f1();
    let f_trained = evaluate_clustering(&trained.np_clustering, &gold).average_f1();
    assert!(
        f_trained > f_untrained - 0.05,
        "training must not collapse quality: {f_trained:.3} vs {f_untrained:.3}"
    );
}

#[test]
fn nytimes_regime_has_more_oov_and_still_runs() {
    let d = nytimes2018_like(13, 0.004);
    let oov = d.gold.np_entity.iter().filter(|e| e.is_none()).count();
    assert!(oov > 0);
    let out = Jocl::new(fast_config()).run(input(&d), None);
    assert_eq!(out.np_links.len(), d.okb.num_np_mentions());
}

#[test]
fn deterministic_end_to_end() {
    let d = small_dataset();
    let a = Jocl::new(fast_config()).run(input(&d), None);
    let b = Jocl::new(fast_config()).run(input(&d), None);
    assert_eq!(a.np_links, b.np_links);
    assert_eq!(
        a.np_clustering.assignment(),
        b.np_clustering.assignment()
    );
}

#[test]
fn tsv_roundtrip_of_generated_dataset() {
    let d = reverb45k_like(5, 0.002);
    let dir = std::env::temp_dir().join(format!("jocl-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let okb_path = dir.join("okb.tsv");
    jocl::kb::tsv::write_okb(&d.okb, &okb_path).unwrap();
    let okb = jocl::kb::tsv::read_okb(&okb_path).unwrap();
    assert_eq!(okb.len(), d.okb.len());
    let ckb_dir = dir.join("ckb");
    jocl::kb::tsv::write_ckb(&d.ckb, &ckb_dir).unwrap();
    let ckb = jocl::kb::tsv::read_ckb(&ckb_dir).unwrap();
    assert_eq!(ckb.num_entities(), d.ckb.num_entities());
    assert_eq!(ckb.num_facts(), d.ckb.num_facts());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn feature_ablation_monotone_tendency() {
    // JOCL-all should not be materially worse than JOCL-single (paper
    // §4.5: more signals, better performance).
    let d = small_dataset();
    let signals = build_signals(&d.okb, &d.ckb, &d.ppdb, &d.corpus, &fast_config().sgns);
    let gold = d.gold.np_clustering();
    let run = |fs: FeatureSet| {
        let out = Jocl::new(JoclConfig { features: fs, ..fast_config() })
            .run_with_signals(input(&d), &signals, None);
        evaluate_clustering(&out.np_clustering, &gold).average_f1()
    };
    let single = run(FeatureSet::Single);
    let all = run(FeatureSet::All);
    assert!(
        all > single - 0.03,
        "all-features must not lose to single: all {all:.3} vs single {single:.3}"
    );
}
