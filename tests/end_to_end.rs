//! Workspace-spanning integration tests: datagen → signals → JOCL →
//! evaluation, plus the paper's headline claims at test scale.

use jocl::baselines;
use jocl::core::signals::build_signals;
use jocl::core::{FeatureSet, Jocl, JoclConfig, JoclInput, Variant};
use jocl::datagen::{nytimes2018_like, reverb45k_like, Dataset};
use jocl::embed::SgnsOptions;
use jocl::eval::clustering::evaluate_clustering;
use jocl::eval::linking_accuracy;

fn small_dataset() -> Dataset {
    reverb45k_like(21, 0.004)
}

fn input(d: &Dataset) -> JoclInput<'_> {
    JoclInput { okb: &d.okb, ckb: &d.ckb, ppdb: &d.ppdb, corpus: &d.corpus }
}

fn fast_config() -> JoclConfig {
    JoclConfig {
        train_epochs: 0,
        sgns: SgnsOptions { dim: 16, epochs: 2, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn jocl_beats_morph_norm_on_synthetic_reverb() {
    let d = small_dataset();
    let out = Jocl::new(fast_config()).run(input(&d), None);
    let gold = d.gold.np_clustering();
    let jocl_f1 = evaluate_clustering(&out.np_clustering, &gold).average_f1();
    let morph_f1 = evaluate_clustering(&baselines::morph_norm(&d.okb), &gold).average_f1();
    assert!(jocl_f1 > morph_f1, "JOCL ({jocl_f1:.3}) must beat Morph Norm ({morph_f1:.3})");
}

#[test]
fn joint_beats_cano_only_on_np_task() {
    let d = small_dataset();
    let signals = build_signals(&d.okb, &d.ckb, &d.ppdb, &d.corpus, &fast_config().sgns);
    let gold = d.gold.np_clustering();
    let full = Jocl::new(fast_config()).run_with_signals(input(&d), &signals, None);
    let cano = Jocl::new(JoclConfig { variant: Variant::CanoOnly, ..fast_config() })
        .run_with_signals(input(&d), &signals, None);
    let f_full = evaluate_clustering(&full.np_clustering, &gold).average_f1();
    let f_cano = evaluate_clustering(&cano.np_clustering, &gold).average_f1();
    assert!(
        f_full > f_cano,
        "interaction must help canonicalization: full {f_full:.3} vs cano {f_cano:.3}"
    );
}

#[test]
fn linking_accuracy_is_reasonable() {
    let d = small_dataset();
    let out = Jocl::new(fast_config()).run(input(&d), None);
    let score = linking_accuracy(&out.np_links, &d.gold.np_entity);
    assert!(score.accuracy() > 0.6, "entity linking accuracy too low: {}", score.accuracy());
}

#[test]
fn training_improves_or_preserves_quality() {
    let d = small_dataset();
    let signals = build_signals(&d.okb, &d.ckb, &d.ppdb, &d.corpus, &fast_config().sgns);
    let (validation, _) = d.entity_split(0.2, 9);
    let labels = {
        // Rebuild the bench helper inline to avoid a dev-dependency cycle.
        use jocl::core::pipeline::ValidationLabels;
        use jocl::kb::{NpMention, NpSlot, RpMention};
        let mut l = ValidationLabels::empty(&d.okb);
        for &t in &validation {
            for slot in [NpSlot::Subject, NpSlot::Object] {
                let m = NpMention { triple: t, slot }.dense();
                l.np_entity[m] = d.gold.np_entity[m];
                l.np_cluster[m] = Some(d.gold.np_cluster_labels[m]);
            }
            let m = RpMention(t).dense();
            l.rp_relation[m] = d.gold.rp_relation[m];
            l.rp_cluster[m] = Some(d.gold.rp_cluster_labels[m]);
        }
        l
    };
    let untrained = Jocl::new(fast_config()).run_with_signals(input(&d), &signals, None);
    let trained = Jocl::new(JoclConfig { train_epochs: 3, ..fast_config() }).run_with_signals(
        input(&d),
        &signals,
        Some(&labels),
    );
    assert!(trained.diagnostics.train_epochs > 0, "training must actually run");
    let gold = d.gold.np_clustering();
    let f_untrained = evaluate_clustering(&untrained.np_clustering, &gold).average_f1();
    let f_trained = evaluate_clustering(&trained.np_clustering, &gold).average_f1();
    assert!(
        f_trained > f_untrained - 0.05,
        "training must not collapse quality: {f_trained:.3} vs {f_untrained:.3}"
    );
}

#[test]
fn nytimes_regime_has_more_oov_and_still_runs() {
    let d = nytimes2018_like(13, 0.004);
    let oov = d.gold.np_entity.iter().filter(|e| e.is_none()).count();
    assert!(oov > 0);
    let out = Jocl::new(fast_config()).run(input(&d), None);
    assert_eq!(out.np_links.len(), d.okb.num_np_mentions());
}

#[test]
fn deterministic_end_to_end() {
    let d = small_dataset();
    let a = Jocl::new(fast_config()).run(input(&d), None);
    let b = Jocl::new(fast_config()).run(input(&d), None);
    assert_eq!(a.np_links, b.np_links);
    assert_eq!(a.np_clustering.assignment(), b.np_clustering.assignment());
}

#[test]
fn tsv_roundtrip_of_generated_dataset() {
    let d = reverb45k_like(5, 0.002);
    let dir = std::env::temp_dir().join(format!("jocl-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let okb_path = dir.join("okb.tsv");
    jocl::kb::tsv::write_okb(&d.okb, &okb_path).unwrap();
    let okb = jocl::kb::tsv::read_okb(&okb_path).unwrap();
    assert_eq!(okb.len(), d.okb.len());
    let ckb_dir = dir.join("ckb");
    jocl::kb::tsv::write_ckb(&d.ckb, &ckb_dir).unwrap();
    let ckb = jocl::kb::tsv::read_ckb(&ckb_dir).unwrap();
    assert_eq!(ckb.num_entities(), d.ckb.num_entities());
    assert_eq!(ckb.num_facts(), d.ckb.num_facts());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figure1_worked_example_exact_clusters_and_links() {
    // The paper's running example (Figure 1a) must come out exactly:
    // NP groups {s1, s2}, {s3}, {o1}, {o2, o3}; RP groups {p1}, {p2, p3};
    // links s1,s2 → e4, s3 → e3, o1 → e1, o2,o3 → e2, p1 → r1, p2,p3 → r2.
    use jocl::core::example::figure1;
    use jocl::kb::{NpMention, NpSlot, RpMention, TripleId};

    let ex = figure1();
    let out = Jocl::new(ex.config())
        .run(JoclInput { okb: &ex.okb, ckb: &ex.ckb, ppdb: &ex.ppdb, corpus: &ex.corpus }, None);

    let np = |t: u32, slot: NpSlot| NpMention { triple: TripleId(t), slot }.dense();
    let rp = |t: u32| RpMention(TripleId(t)).dense();
    let (s1, s2, s3) = (np(0, NpSlot::Subject), np(1, NpSlot::Subject), np(2, NpSlot::Subject));
    let (o1, o2, o3) = (np(0, NpSlot::Object), np(1, NpSlot::Object), np(2, NpSlot::Object));

    // Linking: every mention resolves to the paper's entity/relation.
    let expected_np_links = [
        (s1, ex.e_umd),
        (s2, ex.e_umd),
        (s3, ex.e_uva),
        (o1, ex.e_maryland),
        (o2, ex.e_u21),
        (o3, ex.e_u21),
    ];
    for (mention, entity) in expected_np_links {
        assert_eq!(out.np_links[mention], Some(entity), "NP mention {mention}");
    }
    assert_eq!(out.rp_links[rp(0)], Some(ex.r_location));
    assert_eq!(out.rp_links[rp(1)], Some(ex.r_member));
    assert_eq!(out.rp_links[rp(2)], Some(ex.r_member));

    // Canonicalization: the exact partition, not just pairwise spot
    // checks — four NP clusters {s1,s2} {s3} {o1} {o2,o3} ...
    let c = &out.np_clustering;
    assert_eq!(c.num_clusters(), 4);
    let groups = [vec![s1, s2], vec![s3], vec![o1], vec![o2, o3]];
    for g in &groups {
        for (&a, &b) in g.iter().zip(g.iter().skip(1)) {
            assert!(c.same(a, b), "{a} and {b} must share a cluster");
        }
    }
    for (i, gi) in groups.iter().enumerate() {
        for gj in groups.iter().skip(i + 1) {
            assert!(!c.same(gi[0], gj[0]), "{} and {} must be separate", gi[0], gj[0]);
        }
    }
    // ... and two RP clusters {p1} {p2,p3}.
    let rc = &out.rp_clustering;
    assert_eq!(rc.num_clusters(), 2);
    assert!(rc.same(rp(1), rp(2)));
    assert!(!rc.same(rp(0), rp(1)));
}

#[test]
fn feature_ablation_monotone_tendency() {
    // JOCL-all should not be materially worse than JOCL-single (paper
    // §4.5: more signals, better performance).
    let d = small_dataset();
    let signals = build_signals(&d.okb, &d.ckb, &d.ppdb, &d.corpus, &fast_config().sgns);
    let gold = d.gold.np_clustering();
    let run = |fs: FeatureSet| {
        let out = Jocl::new(JoclConfig { features: fs, ..fast_config() }).run_with_signals(
            input(&d),
            &signals,
            None,
        );
        evaluate_clustering(&out.np_clustering, &gold).average_f1()
    };
    let single = run(FeatureSet::Single);
    let all = run(FeatureSet::All);
    assert!(
        all > single - 0.03,
        "all-features must not lose to single: all {all:.3} vs single {single:.3}"
    );
}
