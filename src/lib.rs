#![forbid(unsafe_code)]
//! # jocl — Joint Open Knowledge Base Canonicalization and Linking
//!
//! Umbrella crate for the JOCL workspace, a from-scratch Rust reproduction
//! of *"Joint Open Knowledge Base Canonicalization and Linking"* (Liu,
//! Shen, Wang, Wang, Yang, Yuan — SIGMOD 2021).
//!
//! Re-exports every sub-crate under a stable prefix so downstream users can
//! depend on a single crate:
//!
//! ```
//! use jocl::text::tokenize;
//! assert_eq!(tokenize("University of Maryland").len(), 3);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduced tables and figures.

pub use jocl_baselines as baselines;
pub use jocl_cluster as cluster;
pub use jocl_core as core;
pub use jocl_datagen as datagen;
pub use jocl_embed as embed;
pub use jocl_eval as eval;
pub use jocl_exec as exec;
pub use jocl_fg as fg;
pub use jocl_kb as kb;
pub use jocl_obs as obs;
pub use jocl_rules as rules;
pub use jocl_serve as serve;
pub use jocl_text as text;
