//! KB enrichment: the paper's motivating application (§1 — "integrating
//! OIE triples to CKBs is a significant and promising way for enriching
//! existing CKBs").
//!
//! ```bash
//! cargo run --release --example enrich_ckb
//! ```
//!
//! A synthetic ReVerb45K-like OKB is jointly canonicalized and linked;
//! every fully-linked triple whose fact is *absent* from the CKB becomes
//! a candidate new fact, with support counted over the canonicalization
//! groups.

use jocl::core::{Jocl, JoclConfig};
use jocl::datagen::reverb45k_like;
use jocl::kb::{NpMention, NpSlot, RpMention};

fn main() {
    let dataset = reverb45k_like(7, 0.01);
    println!(
        "World: {} triples, CKB: {} entities / {} relations / {} facts",
        dataset.okb.len(),
        dataset.ckb.num_entities(),
        dataset.ckb.num_relations(),
        dataset.ckb.num_facts()
    );

    let config = JoclConfig { train_epochs: 0, ..Default::default() };
    let input = jocl::core::JoclInput {
        okb: &dataset.okb,
        ckb: &dataset.ckb,
        ppdb: &dataset.ppdb,
        corpus: &dataset.corpus,
    };
    let out = Jocl::new(config).run(input, None);

    // Collect candidate new facts: linked triples not already in the CKB,
    // with support = number of OIE triples asserting them.
    let mut support: std::collections::BTreeMap<(u32, u32, u32), usize> = Default::default();
    for (t, _) in dataset.okb.triples() {
        let s = out.np_links[NpMention { triple: t, slot: NpSlot::Subject }.dense()];
        let r = out.rp_links[RpMention(t).dense()];
        let o = out.np_links[NpMention { triple: t, slot: NpSlot::Object }.dense()];
        let (Some(s), Some(r), Some(o)) = (s, r, o) else { continue };
        if !dataset.ckb.has_fact(s, r, o) {
            *support.entry((s.0, r.0, o.0)).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<((u32, u32, u32), usize)> = support.into_iter().collect();
    ranked.sort_by_key(|&(_, n)| std::cmp::Reverse(n));

    println!("\nTop candidate facts to add (support = #OIE triples):");
    for ((s, r, o), n) in ranked.iter().take(10) {
        println!(
            "  <{} | {} | {}>   support {}",
            dataset.ckb.entity(jocl::kb::EntityId(*s)).name,
            dataset.ckb.relation(jocl::kb::RelationId(*r)).name,
            dataset.ckb.entity(jocl::kb::EntityId(*o)).name,
            n
        );
    }
    println!("\n{} distinct candidate facts extracted.", ranked.len());
    assert!(!ranked.is_empty(), "an incomplete CKB must yield enrichment candidates");
}
