//! Ablation lab: exercise JOCL's variant and feature-set switches on one
//! dataset — the paper's §4.4/§4.5 analyses as a library workflow.
//!
//! ```bash
//! cargo run --release --example ablation_lab
//! ```
//!
//! Also demonstrates the framework's extensibility claim: because every
//! factor family is a weight group over feature vectors, adding a new
//! signal is a one-line feature-vector change (see `FeatureSet` docs in
//! `jocl-core`).

use jocl::core::signals::build_signals;
use jocl::core::{FeatureSet, Jocl, JoclConfig, JoclInput, Variant};
use jocl::datagen::reverb45k_like;
use jocl::embed::SgnsOptions;
use jocl::eval::clustering::evaluate_clustering;

fn main() {
    let dataset = reverb45k_like(11, 0.008);
    let input = JoclInput {
        okb: &dataset.okb,
        ckb: &dataset.ckb,
        ppdb: &dataset.ppdb,
        corpus: &dataset.corpus,
    };
    // Build signals once, reuse across all runs (the expensive part is
    // SGNS training).
    let signals = build_signals(
        &dataset.okb,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions::default(),
    );
    let gold = dataset.gold.np_clustering();

    println!("variant / features -> NP average F1  (triples: {})", dataset.okb.len());
    for (label, variant, features) in [
        ("JOCLcano        ", Variant::CanoOnly, FeatureSet::All),
        ("JOCL-single     ", Variant::Full, FeatureSet::Single),
        ("JOCL-double     ", Variant::Full, FeatureSet::Double),
        ("JOCL-all        ", Variant::Full, FeatureSet::All),
        ("no consistency  ", Variant::NoConsistency, FeatureSet::All),
    ] {
        let config = JoclConfig { variant, features, train_epochs: 0, ..Default::default() };
        let out = Jocl::new(config).run_with_signals(input, &signals, None);
        let f1 = evaluate_clustering(&out.np_clustering, &gold).average_f1();
        println!(
            "  {label} {f1:.3}   ({} vars, {} factors, {} lbp iters)",
            out.diagnostics.num_vars, out.diagnostics.num_factors, out.diagnostics.lbp.iterations
        );
    }
}
