//! Quickstart: run JOCL on the paper's Figure 1(a) running example.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Three OIE triples are jointly canonicalized and linked against a
//! four-entity CKB; the output reproduces the figure's blue groups and
//! arrows.

use jocl::core::example::figure1;
use jocl::core::Jocl;
use jocl::kb::{NpMention, NpSlot, RpMention, TripleId};

fn main() {
    let ex = figure1();
    println!("Input OIE triples:");
    for (id, t) in ex.okb.triples() {
        println!("  t{}: <{} | {} | {}>", id.0 + 1, t.subject, t.predicate, t.object);
    }

    let jocl = Jocl::new(ex.config());
    let out = jocl.run(ex.input(), None);

    println!("\nNP canonicalization groups:");
    let mut groups: std::collections::BTreeMap<u32, Vec<String>> = Default::default();
    for m in ex.okb.np_mentions() {
        let c = out.np_clustering.cluster_of(m.dense());
        groups.entry(c).or_default().push(ex.okb.np_phrase(m).to_string());
    }
    for (c, members) in groups {
        println!("  group {c}: {members:?}");
    }

    println!("\nEntity links:");
    for (id, _) in ex.okb.triples() {
        for slot in [NpSlot::Subject, NpSlot::Object] {
            let m = NpMention { triple: id, slot };
            let link = out.np_links[m.dense()]
                .map(|e| ex.ckb.entity(e).name.clone())
                .unwrap_or_else(|| "NIL".to_string());
            println!("  {:28} -> {}", ex.okb.np_phrase(m), link);
        }
    }

    println!("\nRelation links:");
    for (id, _) in ex.okb.triples() {
        let m = RpMention(id);
        let link = out.rp_links[m.dense()]
            .map(|r| ex.ckb.relation(r).name.clone())
            .unwrap_or_else(|| "NIL".to_string());
        println!("  {:28} -> {}", ex.okb.rp_phrase(m), link);
    }

    // Sanity: the Figure 1(a) result.
    let s1 = NpMention { triple: TripleId(0), slot: NpSlot::Subject };
    let s2 = NpMention { triple: TripleId(1), slot: NpSlot::Subject };
    assert!(out.np_clustering.same(s1.dense(), s2.dense()));
    assert_eq!(out.np_links[s2.dense()], Some(ex.e_umd));
    println!("\nFigure 1(a) reproduced: \"University of Maryland\" and \"UMD\" are one group, linked to e4.");
}
