//! Offline shim for `criterion`: wall-clock microbenchmark harness with
//! the upstream call-site API (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`/`criterion_main!`).
//!
//! Reports the median of a handful of timed batches as ns/iter on
//! stdout. Under `--test` (what `cargo test --benches` passes) each
//! benchmark body runs exactly once, so benches double as smoke tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    test_mode: bool,
    /// Target measurement time per benchmark (split across batches).
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream semantics: cargo passes `--bench` only under
        // `cargo bench`; anything else (e.g. `cargo test --benches`)
        // runs each body once as a smoke test.
        let args: Vec<String> = std::env::args().collect();
        let test_mode = !args.iter().any(|a| a == "--bench") || args.iter().any(|a| a == "--test");
        Self { test_mode, measure: Duration::from_millis(300) }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup { c: self, name }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id.0, &mut f);
        self
    }

    /// Upstream knob; measurement here is already short, so it only
    /// nudges the target time.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.measure = Duration::from_millis((10 * n.clamp(10, 100)) as u64);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.c, &label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.c, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier (only the rendered label matters here).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    test_mode: bool,
    measure: Duration,
    /// Median ns/iter from the timed batches (None in test mode).
    result_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate: how many iterations fit in ~1/8 of the budget?
        let budget = self.measure;
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_batch = (budget.as_nanos() / 8 / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples = Vec::with_capacity(8);
        let deadline = Instant::now() + budget;
        loop {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / per_batch as f64);
            if Instant::now() >= deadline && samples.len() >= 3 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        self.result_ns = Some(samples[samples.len() / 2]);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, f: &mut F) {
    let mut b = Bencher { test_mode: c.test_mode, measure: c.measure, result_ns: None };
    f(&mut b);
    match b.result_ns {
        Some(ns) => println!("  {label:<50} {:>14} ns/iter", format_ns(ns)),
        None => println!("  {label:<50} ok (test mode)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}e9", ns / 1e9)
    } else if ns >= 1000.0 {
        let v = ns as u64;
        let (mut s, mut rem) = (String::new(), v);
        while rem >= 1000 {
            s = format!("_{:03}{}", rem % 1000, s);
            rem /= 1000;
        }
        format!("{rem}{s}")
    } else {
        format!("{ns:.1}")
    }
}

/// Build a function that runs each listed benchmark with one harness.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter(4).0, "4");
        assert_eq!(BenchmarkId::new("hac", "single").0, "hac/single");
    }

    #[test]
    fn bencher_measures_in_bench_mode() {
        let mut b =
            Bencher { test_mode: false, measure: Duration::from_millis(5), result_ns: None };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.result_ns.is_some());
        assert!(b.result_ns.unwrap() > 0.0);
    }
}
