//! Offline shim for the `rand` crate (0.8-style API), covering exactly
//! what `jocl_datagen` and `jocl_embed` use: `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` over integer/float ranges.
//!
//! The core generator is xoshiro256** seeded through SplitMix64 —
//! statistically solid for data generation, deterministic across
//! platforms, and dependency-free.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic xoshiro256** generator (stands in for rand's
    /// ChaCha-based `StdRng`; same name so call sites don't change).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_u64_seed(seed)
        }
    }
}

/// Raw 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's full output range
/// (floats land in `[0, 1)`), mirroring rand's `Standard` distribution.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly samplable from a `[lo, hi)` / `[lo, hi]` interval.
pub trait SampleUniform: PartialOrd + Sized {
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R, lo: Self, hi: Self, inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range in gen_range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R, lo: Self, hi: Self, inclusive: bool,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`]. Single blanket impl per range
/// shape (like upstream rand) so type inference can flow from the usage
/// of the sampled value back into integer literals.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing sampling trait (rand 0.8 names).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(3..=4);
            assert!((3..=4).contains(&y));
            let f = r.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&f));
            let u: f32 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_expectation() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn uniformish_spread() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        assert!(counts.iter().all(|&c| (800..1200).contains(&c)), "{counts:?}");
    }
}
