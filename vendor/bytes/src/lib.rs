//! Offline shim for the `bytes` crate: just the `Buf`/`BufMut` surface
//! used by `jocl_embed::store` (little-endian codec over slices/vecs).

/// Read cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Append-only write sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32_le(7);
        v.put_u16_le(300);
        v.put_f32_le(1.5);
        v.put_slice(b"ab");
        let mut r: &[u8] = &v;
        assert_eq!(r.remaining(), 12);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(&r[..2], b"ab");
        r.advance(2);
        assert_eq!(r.remaining(), 0);
    }
}
