//! Runner plumbing: config, deterministic RNG, failure payloads.

/// A failed `prop_assert!` (carried as `Err` so the harness can attach
/// case index and seed before panicking).
#[derive(Debug)]
pub struct CaseError(pub String);

/// Mirror of upstream `ProptestConfig`; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// `PROPTEST_CASES` env var overrides whatever the test configured —
    /// the CI knob for bounding suite runtime.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; we default lower to keep CI fast
        // (the satellite requirement) while staying overridable.
        Self { cases: 64 }
    }
}

/// Deterministic per-test seed derived from the test path (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h | 1
}

/// xoshiro256** core, seeded through SplitMix64.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Best-effort extraction of a panic payload message.
pub fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
