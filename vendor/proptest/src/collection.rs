//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Length specification for [`vec`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self { lo: r.start, hi: r.end }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let n = self.size.lo + if span <= 1 { 0 } else { rng.below(span) as usize };
        (0..n).map(|_| self.element.sample_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let mut r = TestRng::new(7);
        let s = vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = s.sample_value(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let fixed = vec(0u32..10, 3usize);
        assert_eq!(fixed.sample_value(&mut r).len(), 3);
    }
}
