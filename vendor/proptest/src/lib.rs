//! Offline shim for `proptest`: a sample-only property-testing harness
//! with the upstream call-site syntax (`proptest!`, `prop_assert!`,
//! `Strategy::{prop_map, prop_flat_map}`, `proptest::collection::vec`,
//! regex-literal string strategies, `ProptestConfig::with_cases`).
//!
//! Differences from upstream (see `vendor/README.md`): no shrinking and
//! no failure persistence. A failing case panics with the case index and
//! the deterministic per-test seed, which is enough to reproduce since
//! generation is seeded by the test name.
//!
//! Case count: `PROPTEST_CASES` env var > `proptest_config` > default 64.

pub mod strategy;

pub mod collection;

pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Run a property body over sampled inputs.
///
/// Supports the upstream forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// docs
///     #[test]
///     fn prop(a in strat1(), (b, c) in strat2()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __cfg.effective_cases();
            let __seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cases {
                let mut __rng = $crate::test_runner::TestRng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(
                    let $pat = $crate::strategy::Strategy::sample_value(&($strat), &mut __rng);
                )+
                let __run = || -> ::std::result::Result<(), $crate::test_runner::CaseError> {
                    $body
                    Ok(())
                };
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        __case + 1, __cases, __seed, e.0
                    ),
                    Err(p) => {
                        let msg = $crate::test_runner::panic_message(&p);
                        panic!(
                            "proptest case {}/{} panicked (seed {:#x}): {}",
                            __case + 1, __cases, __seed, msg
                        )
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::CaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Discard the current case when an assumption fails. Sample-only
/// runner: a discarded case just succeeds (no retry budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
