//! Sample-only strategies: every `Strategy` maps the runner RNG to a
//! value. Combinators mirror the upstream names used in this workspace.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, reason }
    }
}

// Strategies are consumed by reference in `sample_value`, so a borrowed
// strategy is itself a strategy (upstream has the same impl).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample_value(rng)).sample_value(rng)
    }
}

/// Result of [`Strategy::prop_filter`]: resamples until the predicate
/// holds (bounded; panics if the predicate looks unsatisfiable).
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 samples in a row: {}", self.reason);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

// A Vec of strategies produces a Vec of values, one per element
// (upstream semantics; used for e.g. per-node parent ranges).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample_value(rng)).collect()
    }
}

/// String strategies from regex-shaped literals: supports the subset
/// `([class]|literal){m,n}` actually used — character classes with
/// ranges, and `{m}` / `{m,n}` counted repetition.
impl Strategy for &'static str {
    type Value = String;
    fn sample_value(&self, rng: &mut TestRng) -> String {
        sample_regex(self, rng)
    }
}

fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed character class in {pattern:?}"));
            let class = parse_class(&chars[i + 1..close], pattern);
            i = close + 1;
            class
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            vec![chars[i - 1]]
        } else {
            i += 1;
            vec![chars[i - 1]]
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed repetition in {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad repetition lower bound"),
                    b.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1usize, 1usize)
        };
        let n = if lo == hi { lo } else { lo + rng.below((hi - lo + 1) as u64) as usize };
        for _ in 0..n {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty character class in {pattern:?}");
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted class range in {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn regex_word_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let w = "[a-z]{1,12}".sample_value(&mut r);
            assert!((1..=12).contains(&w.len()), "{w:?}");
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn regex_mixed_class_allows_empty() {
        let mut r = rng();
        let mut saw_empty = false;
        for _ in 0..300 {
            let s = "[ a-zA-Z0-9,.-]{0,40}".sample_value(&mut r);
            assert!(s.len() <= 40);
            saw_empty |= s.is_empty();
            assert!(s
                .chars()
                .all(|c| c == ' ' || c.is_ascii_alphanumeric() || matches!(c, ',' | '.' | '-')));
        }
        assert!(saw_empty, "length 0 must be reachable");
    }

    #[test]
    fn combinators_compose() {
        let mut r = rng();
        let s = (2usize..7)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0.0f64..1.0, n)))
            .prop_map(|(n, v)| (n, v.len()));
        for _ in 0..100 {
            let (n, len) = s.sample_value(&mut r);
            assert_eq!(n, len);
            assert!((2..7).contains(&n));
        }
    }

    #[test]
    fn vec_of_strategies_is_elementwise() {
        let mut r = rng();
        let parents: Vec<Range<usize>> = (1..5).map(|i| 0..i).collect();
        for _ in 0..100 {
            let v = parents.sample_value(&mut r);
            assert_eq!(v.len(), 4);
            for (i, &p) in v.iter().enumerate() {
                assert!(p <= i, "parent {p} of node {}", i + 1);
            }
        }
    }
}
