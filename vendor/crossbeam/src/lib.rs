//! Offline shim for `crossbeam::scope`, implemented over
//! `std::thread::scope`. Only the surface used by `jocl_fg::lbp` exists:
//! `scope(|s| { s.spawn(|_| ...); })` returning `Result`.

use std::any::Any;

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread bound to the scope. The closure receives the scope
    /// again (crossbeam's signature) so nested spawns work.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Create a scope in which spawned threads may borrow from the caller's
/// stack. All threads are joined before `scope` returns. A panicking
/// child resurfaces as `Err` (payload of the first panic).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        let chunks: Vec<&mut [u64]> = out.chunks_mut(2).collect();
        super::scope(|s| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                let data = &data;
                s.spawn(move |_| {
                    for (j, c) in chunk.iter_mut().enumerate() {
                        *c = data[i * 2 + j] * 10;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn child_panic_is_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
