#!/usr/bin/env bash
# Deliberately refresh the bench-regression baseline (BENCH_BASELINE.json).
#
# The CI `bench-regression` job fails any PR whose `lbp_sweep`,
# `graph_build` or `end_to_end` median regresses more than 30% against
# the checked-in baseline. When a slowdown is intentional (or a speedup
# should become the new floor), run this script, review the diff, note
# the machine + reason in BENCH_NOTES.md, and commit the result —
# never hand-edit the JSON.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p jocl_bench --bin bench_regression -- --update

echo
echo "Baseline refreshed. Review before committing:"
git --no-pager diff --stat -- BENCH_BASELINE.json || true
